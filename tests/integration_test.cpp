// Cross-layer integration tests: directive text -> parser -> binder ->
// pipeline -> simulated device, exercised as a user would, plus schedule
// introspection and timeline invariants.
#include <gtest/gtest.h>

#include <numeric>
#include <sstream>
#include <vector>

#include "core/pipeline.hpp"
#include "dsl/bind.hpp"
#include "gpu/device_profile.hpp"

namespace gpupipe {
namespace {

TEST(Integration, Fig2DirectiveEndToEnd) {
  // The paper's exact Fig. 2 directive text drives a functional run that is
  // validated against a straightforward host loop.
  gpu::Gpu g(gpu::nvidia_k40m());
  const std::int64_t nz = 20, ny = 6, nx = 5;
  std::vector<double> a0(nz * ny * nx), anext(nz * ny * nx, 0.0);
  std::iota(a0.begin(), a0.end(), 0.0);
  const double c0 = 0.5, c1 = 0.1;

  core::PipelineSpec spec = dsl::compile(
      "#pragma omp target \\\n"
      "pipeline(static[1,3]) \\\n"
      "pipeline_map(to:A0[k-1:3][0:ny][0:nx]) \\\n"
      "pipeline_map(from:Anext[k:1][0:ny][0:nx]) \\\n"
      "pipeline_mem_limit(MB_256)",
      "k", 1, nz - 1,
      {{"A0", dsl::HostArray::of(a0.data(), {nz, ny, nx})},
       {"Anext", dsl::HostArray::of(anext.data(), {nz, ny, nx})}},
      {{"ny", ny}, {"nx", nx}});

  core::Pipeline pipe(g, spec);
  pipe.run([&](const core::ChunkContext& ctx) {
    gpu::KernelDesc kd;
    const core::BufferView in = ctx.view("A0");
    const core::BufferView out = ctx.view("Anext");
    const std::int64_t lo = ctx.begin(), hi = ctx.end();
    kd.body = [in, out, lo, hi, ny, nx, c0, c1] {
      for (std::int64_t k = lo; k < hi; ++k) {
        const double* am = in.slab_ptr(k - 1);
        const double* az = in.slab_ptr(k);
        const double* ap = in.slab_ptr(k + 1);
        double* b = out.slab_ptr(k);
        for (std::int64_t j = 0; j < ny; ++j) {
          for (std::int64_t i = 0; i < nx; ++i) {
            const std::int64_t p = j * nx + i;
            const bool interior = j > 0 && j < ny - 1 && i > 0 && i < nx - 1;
            b[p] = interior
                       ? (az[p + 1] + az[p - 1] + az[p + nx] + az[p - nx] + ap[p] + am[p]) *
                                 c1 -
                             az[p] * c0
                       : az[p];
          }
        }
      }
    };
    return kd;
  });

  for (std::int64_t k = 1; k < nz - 1; ++k) {
    for (std::int64_t j = 0; j < ny; ++j) {
      for (std::int64_t i = 0; i < nx; ++i) {
        const auto idx = [&](std::int64_t ii, std::int64_t jj, std::int64_t kk) {
          return (kk * ny + jj) * nx + ii;
        };
        const bool interior = j > 0 && j < ny - 1 && i > 0 && i < nx - 1;
        const double expect =
            interior ? (a0[idx(i + 1, j, k)] + a0[idx(i - 1, j, k)] + a0[idx(i, j + 1, k)] +
                        a0[idx(i, j - 1, k)] + a0[idx(i, j, k + 1)] + a0[idx(i, j, k - 1)]) *
                               c1 -
                           a0[idx(i, j, k)] * c0
                     : a0[idx(i, j, k)];
        ASSERT_DOUBLE_EQ(anext[idx(i, j, k)], expect) << i << "," << j << "," << k;
      }
    }
  }
}

TEST(Integration, PlanMatchesExecution) {
  gpu::Gpu g(gpu::nvidia_k40m());
  const std::int64_t n = 24, m = 4;
  std::vector<double> in(n * m, 1.0), out(n * m);
  core::PipelineSpec spec = dsl::compile(
      "pipeline(static[2,2]) pipeline_map(to: A[k-1:3][0:m]) "
      "pipeline_map(from: B[k:1][0:m])",
      "k", 1, n - 1,
      {{"A", dsl::HostArray::of(in.data(), {n, m})},
       {"B", dsl::HostArray::of(out.data(), {n, m})}},
      {{"m", m}});
  core::Pipeline pipe(g, spec);

  const auto plan = pipe.plan();
  // 22 iterations in chunks of 2 => 11 chunks, round-robin over 2 streams.
  ASSERT_EQ(plan.size(), 11u);
  EXPECT_EQ(plan[0].stream, 0);
  EXPECT_EQ(plan[1].stream, 1);
  EXPECT_EQ(plan[2].stream, 0);
  // First chunk brings the full window [0,4); later chunks slide by 2.
  ASSERT_EQ(plan[0].copies_in.size(), 1u);
  EXPECT_EQ(plan[0].copies_in[0].lo, 0);
  EXPECT_EQ(plan[0].copies_in[0].hi, 4);
  ASSERT_EQ(plan[1].copies_in.size(), 1u);
  EXPECT_EQ(plan[1].copies_in[0].lo, 4);
  EXPECT_EQ(plan[1].copies_in[0].hi, 6);
  // Outputs cover exactly the chunk's iterations.
  EXPECT_EQ(plan[0].copies_out[0].lo, 1);
  EXPECT_EQ(plan[0].copies_out[0].hi, 3);

  // The plan's input volume equals what execution actually transfers.
  Bytes planned = 0;
  for (const auto& cp : plan)
    for (const auto& mv : cp.copies_in)
      planned += static_cast<Bytes>(mv.hi - mv.lo) * m * sizeof(double);
  pipe.run([&](const core::ChunkContext& ctx) {
    gpu::KernelDesc kd;
    const core::BufferView vout = ctx.view("B");
    const std::int64_t lo = ctx.begin(), hi = ctx.end();
    kd.body = [vout, lo, hi, m] {
      for (std::int64_t r = lo; r < hi; ++r)
        for (std::int64_t j = 0; j < m; ++j) vout.slab_ptr(r)[j] = 1.0;
    };
    return kd;
  });
  EXPECT_EQ(pipe.stats().h2d_bytes, planned);

  std::ostringstream os;
  pipe.print_plan(os);
  EXPECT_NE(os.str().find("chunk 0 [1,3) on stream 0"), std::string::npos);
}

TEST(Integration, TimelineShowsTransferComputeOverlap) {
  // The trace must show H2D spans overlapping kernel spans in time — the
  // paper's whole point — and events measure a sensible region length.
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  g.hazards().set_enabled(false);
  const std::int64_t n = 64, m = 65536;  // 512 KiB rows
  std::byte* in = g.host_alloc(static_cast<Bytes>(n * m) * 8);
  std::byte* out = g.host_alloc(static_cast<Bytes>(n * m) * 8);
  core::PipelineSpec spec;
  spec.chunk_size = 4;
  spec.num_streams = 2;
  spec.loop_begin = 0;
  spec.loop_end = n;
  spec.arrays = {
      core::ArraySpec{"in", core::MapType::To, in, 8, {n, m},
                      core::SplitSpec{0, core::Affine{1, 0}, 1}},
      core::ArraySpec{"out", core::MapType::From, out, 8, {n, m},
                      core::SplitSpec{0, core::Affine{1, 0}, 1}},
  };
  core::Pipeline pipe(g, spec);
  g.trace().clear();
  pipe.run([m](const core::ChunkContext& ctx) {
    gpu::KernelDesc k;
    k.bytes = static_cast<Bytes>(ctx.iterations() * m) * 8 * 24;
    return k;
  });

  bool overlap = false;
  for (const auto& h : g.trace().spans()) {
    if (h.kind != sim::SpanKind::H2D) continue;
    for (const auto& kk : g.trace().spans()) {
      if (kk.kind != sim::SpanKind::Kernel) continue;
      if (std::max(h.start, kk.start) < std::min(h.end, kk.end)) overlap = true;
    }
  }
  EXPECT_TRUE(overlap);

  // Chrome export of the same trace stays consistent.
  std::ostringstream os;
  g.trace().dump_chrome_json(os);
  EXPECT_NE(os.str().find("HtoD"), std::string::npos);
}

TEST(Integration, EventElapsedBracketsARegion) {
  gpu::Gpu g(gpu::nvidia_k40m());
  std::byte* host = g.host_alloc(8 * MiB);
  std::byte* dev = g.device_malloc(8 * MiB);
  gpu::Stream& s = g.create_stream();
  gpu::EventPtr before = g.record_event(s);
  g.memcpy_h2d_async(dev, host, 8 * MiB, s);
  gpu::EventPtr after = g.record_event(s);
  g.synchronize(after);
  const SimTime dt = g.elapsed(before, after);
  // 8 MiB at ~6 GB/s is on the order of 1.4 ms.
  EXPECT_GT(dt, msec(1.0));
  EXPECT_LT(dt, msec(2.0));
  EXPECT_THROW(g.elapsed(nullptr, after), Error);
}

TEST(Integration, ManyPipelinesShareOneDeviceCleanly) {
  // Several pipelined regions on the same device, interleaved with raw API
  // use, must not interfere.
  gpu::Gpu g(gpu::nvidia_k40m());
  const std::int64_t n = 16, m = 8;
  std::vector<double> a(n * m, 1.0), b(n * m), c(n * m), d(n * m);

  auto make = [&](std::vector<double>& in, std::vector<double>& out) {
    core::PipelineSpec spec;
    spec.chunk_size = 2;
    spec.num_streams = 2;
    spec.loop_begin = 0;
    spec.loop_end = n;
    spec.arrays = {
        core::ArraySpec{"in", core::MapType::To, reinterpret_cast<std::byte*>(in.data()),
                        sizeof(double), {n, m}, core::SplitSpec{0, core::Affine{1, 0}, 1}},
        core::ArraySpec{"out", core::MapType::From,
                        reinterpret_cast<std::byte*>(out.data()), sizeof(double), {n, m},
                        core::SplitSpec{0, core::Affine{1, 0}, 1}},
    };
    return spec;
  };
  auto doubling = [m](const core::ChunkContext& ctx) {
    gpu::KernelDesc k;
    const core::BufferView vin = ctx.view("in");
    const core::BufferView vout = ctx.view("out");
    const std::int64_t lo = ctx.begin(), hi = ctx.end();
    k.body = [vin, vout, lo, hi, m] {
      for (std::int64_t r = lo; r < hi; ++r)
        for (std::int64_t j = 0; j < m; ++j) vout.slab_ptr(r)[j] = 2.0 * vin.slab_ptr(r)[j];
    };
    return k;
  };

  core::Pipeline p1(g, make(a, b));
  core::Pipeline p2(g, make(b, c));
  p1.run(doubling);  // b = 2a
  p2.run(doubling);  // c = 2b
  core::Pipeline p3(g, make(c, d));
  p3.run(doubling);  // d = 2c
  for (std::int64_t x = 0; x < n * m; ++x) ASSERT_DOUBLE_EQ(d[x], 8.0);
  EXPECT_EQ(g.live_streams(), 6);  // three live pipelines x two streams
}

TEST(Integration, SameDirectiveAdaptsToSmallerDevices) {
  // The paper's portability claim (SSVI): the extension makes code
  // "resilient to changes in device memory sizes" — the same region spec
  // must run unchanged on a device with far less memory, with the runtime
  // shrinking the chunk size instead of failing.
  const std::int64_t n = 512, m = 4096;  // 16 MiB arrays
  auto run_on_device = [&](gpu::DeviceProfile profile) -> std::int64_t {
    gpu::Gpu g(profile);
    std::vector<double> in(n * m, 1.5), out(n * m, 0.0);
    core::PipelineSpec spec;
    spec.chunk_size = 128;
    spec.num_streams = 2;
    spec.loop_begin = 0;
    spec.loop_end = n;
    spec.arrays = {
        core::ArraySpec{"in", core::MapType::To, reinterpret_cast<std::byte*>(in.data()),
                        sizeof(double), {n, m}, core::SplitSpec{0, core::Affine{1, 0}, 1}},
        core::ArraySpec{"out", core::MapType::From,
                        reinterpret_cast<std::byte*>(out.data()), sizeof(double), {n, m},
                        core::SplitSpec{0, core::Affine{1, 0}, 1}},
    };
    core::Pipeline p(g, spec);
    p.run([&](const core::ChunkContext& ctx) {
      gpu::KernelDesc k;
      const core::BufferView vin = ctx.view("in");
      const core::BufferView vout = ctx.view("out");
      const std::int64_t lo = ctx.begin(), hi = ctx.end();
      k.body = [vin, vout, lo, hi, m] {
        for (std::int64_t r = lo; r < hi; ++r)
          for (std::int64_t j = 0; j < m; ++j) vout.slab_ptr(r)[j] = 2.0 * vin.slab_ptr(r)[j];
      };
      return k;
    });
    for (double v : out) EXPECT_DOUBLE_EQ(v, 3.0);
    return p.effective_chunk_size();
  };

  // Full-size device: the requested chunk survives.
  EXPECT_EQ(run_on_device(gpu::nvidia_k40m()), 128);
  // A device with only 8 MiB usable: the same spec still completes, with
  // the runtime shrinking the chunk automatically.
  gpu::DeviceProfile tiny = gpu::nvidia_k40m();
  tiny.total_memory = 10 * MiB;
  tiny.reserved_memory = 2 * MiB;
  EXPECT_LT(run_on_device(tiny), 128);
}

}  // namespace
}  // namespace gpupipe

