// Unit tests for the directive parser (the Fig. 1 clause syntax).
#include <gtest/gtest.h>

#include "dsl/parser.hpp"

namespace gpupipe::dsl {
namespace {

TEST(Parser, ParsesThePapersFig2Directive) {
  const Directive d = parse(
      "pipeline(static[1,3]) "
      "pipeline_map(to:A0[k-1:3][0:ny][0:nx]) "
      "pipeline_map(from:Anext[k:1][0:ny][0:nx]) "
      "pipeline_mem_limit(MB_256)");
  EXPECT_EQ(d.schedule, core::ScheduleKind::Static);
  EXPECT_EQ(d.chunk_size->eval({}), 1);
  EXPECT_EQ(d.num_streams->eval({}), 3);
  ASSERT_TRUE(d.mem_limit.has_value());
  EXPECT_EQ(*d.mem_limit, 256 * MiB);
  ASSERT_EQ(d.maps.size(), 2u);
  EXPECT_EQ(d.maps[0].type, core::MapType::To);
  EXPECT_EQ(d.maps[0].array, "A0");
  ASSERT_EQ(d.maps[0].dims.size(), 3u);
  EXPECT_EQ(d.maps[0].dims[0].start->eval({{"k", 5}}), 4);
  EXPECT_EQ(d.maps[0].dims[0].extent->eval({}), 3);
  EXPECT_EQ(d.maps[1].type, core::MapType::From);
  EXPECT_EQ(d.maps[1].array, "Anext");
}

TEST(Parser, AcceptsAPragmaPrefixAndLineContinuations) {
  const Directive d = parse(
      "#pragma omp target \\\n"
      "  pipeline(static[2, 4]) \\\n"
      "  pipeline_map(tofrom: A[i:1][0:n])");
  EXPECT_EQ(d.chunk_size->eval({}), 2);
  ASSERT_EQ(d.maps.size(), 1u);
  EXPECT_EQ(d.maps[0].type, core::MapType::ToFrom);
}

TEST(Parser, ScheduleParametersAreOptional) {
  const Directive d = parse("pipeline(static) pipeline_map(to: A[i:1][0:n])");
  EXPECT_EQ(d.chunk_size, nullptr);
  EXPECT_EQ(d.num_streams, nullptr);
}

TEST(Parser, ParsesAdaptiveSchedule) {
  const Directive d = parse("pipeline(adaptive[8,2]) pipeline_map(to: A[i:1][0:n])");
  EXPECT_EQ(d.schedule, core::ScheduleKind::Adaptive);
}

TEST(Parser, ParsesArithmeticExpressions) {
  const Directive d = parse("pipeline_map(to: A[2*k+1 : w-2][0 : nx*ny])");
  const auto& dim0 = d.maps[0].dims[0];
  EXPECT_EQ(dim0.start->eval({{"k", 10}}), 21);
  EXPECT_EQ(dim0.extent->eval({{"w", 5}}), 3);
  EXPECT_EQ(d.maps[0].dims[1].extent->eval({{"nx", 4}, {"ny", 6}}), 24);
}

TEST(Parser, ParsesNegationAndParentheses) {
  const Directive d = parse("pipeline_map(to: A[-1+k : (2+1)*2][0:n])");
  EXPECT_EQ(d.maps[0].dims[0].start->eval({{"k", 3}}), 2);
  EXPECT_EQ(d.maps[0].dims[0].extent->eval({}), 6);
}

TEST(Parser, MemLimitAcceptsAllUnits) {
  EXPECT_EQ(*parse("pipeline_map(to:A[k:1]) pipeline_mem_limit(KB_64)").mem_limit, 64 * KiB);
  EXPECT_EQ(*parse("pipeline_map(to:A[k:1]) pipeline_mem_limit(GB_2)").mem_limit, 2 * GiB);
  EXPECT_EQ(*parse("pipeline_map(to:A[k:1]) pipeline_mem_limit(12345)").mem_limit, 12345u);
}

TEST(Parser, ChunkAndStreamsMayBeSymbolic) {
  const Directive d = parse("pipeline(static[C, S]) pipeline_map(to:A[k:1][0:n])");
  EXPECT_EQ(d.chunk_size->eval({{"C", 16}}), 16);
  EXPECT_EQ(d.num_streams->eval({{"S", 4}}), 4);
}

TEST(Parser, RejectsUnknownClause) {
  EXPECT_THROW(parse("pipelinx(static)"), ParseError);
}

TEST(Parser, RejectsUnknownMapType) {
  EXPECT_THROW(parse("pipeline_map(inout: A[k:1])"), ParseError);
}

TEST(Parser, RejectsUnknownSchedule) {
  EXPECT_THROW(parse("pipeline(dynamic[1,2]) pipeline_map(to:A[k:1])"), ParseError);
}

TEST(Parser, RejectsMissingMapClause) {
  EXPECT_THROW(parse("pipeline(static[1,2])"), ParseError);
}

TEST(Parser, RejectsDuplicateClauses) {
  EXPECT_THROW(parse("pipeline(static) pipeline(static) pipeline_map(to:A[k:1])"),
               ParseError);
  EXPECT_THROW(parse("pipeline_map(to:A[k:1]) pipeline_mem_limit(MB_1) "
                     "pipeline_mem_limit(MB_2)"),
               ParseError);
}

TEST(Parser, RejectsMalformedSections) {
  EXPECT_THROW(parse("pipeline_map(to: A)"), ParseError);          // no section
  EXPECT_THROW(parse("pipeline_map(to: A[k:1)"), ParseError);      // missing ]
  EXPECT_THROW(parse("pipeline_map(to: A[k 1])"), ParseError);     // missing :
  EXPECT_THROW(parse("pipeline_map(to: A[k:1][0:])"), ParseError); // empty extent
}

TEST(Parser, RejectsBadMemLimit) {
  EXPECT_THROW(parse("pipeline_map(to:A[k:1]) pipeline_mem_limit(TB_1)"), ParseError);
  EXPECT_THROW(parse("pipeline_map(to:A[k:1]) pipeline_mem_limit(MB_x)"), ParseError);
  EXPECT_THROW(parse("pipeline_map(to:A[k:1]) pipeline_mem_limit(MB_0)"), ParseError);
}

TEST(Parser, DiagnosticsCarryACaret) {
  try {
    parse("pipeline_map(to: A[k:1][0:n]) pipeline(wrong)");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find('^'), std::string::npos);
    EXPECT_NE(msg.find("wrong"), std::string::npos);
  }
}

TEST(Parser, UnboundVariableFailsAtEvalWithName) {
  const Directive d = parse("pipeline_map(to: A[k:1][0:n])");
  try {
    d.maps[0].dims[1].extent->eval({});
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("'n'"), std::string::npos);
  }
}

TEST(Expr, ReferencesDetectsVariables) {
  const Directive d = parse("pipeline_map(to: A[2*k-1:3][0:ny])");
  EXPECT_TRUE(d.maps[0].dims[0].start->references("k"));
  EXPECT_FALSE(d.maps[0].dims[0].start->references("ny"));
  EXPECT_TRUE(d.maps[0].dims[1].extent->references("ny"));
}

TEST(Expr, StrIsReadable) {
  const Directive d = parse("pipeline_map(to: A[2*k+1:3][0:n])");
  EXPECT_EQ(d.maps[0].dims[0].start->str(), "((2*k)+1)");
}

}  // namespace
}  // namespace gpupipe::dsl
