// Dry-run autotuning fidelity: the cost-model-only sweep (plan replay, no
// execution, no allocations) must select the same configuration as the
// measured sweep on the paper's Fig. 4 / Fig. 7 style workloads.
#include <gtest/gtest.h>

#include <vector>

#include "core/autotune.hpp"
#include "gpu/device_profile.hpp"

namespace gpupipe::core {
namespace {

// Lattice-QCD-shaped region (Fig. 4): spinor + gauge planes in with a halo,
// result planes out, t the split dimension.
PipelineSpec qcd_spec(gpu::Gpu& g, std::int64_t n) {
  const std::int64_t v = n * n * n * 24;  // spinor doubles per t-plane
  const std::int64_t u = n * n * n * 72;  // gauge doubles per t-plane
  std::byte* psi = g.host_alloc(static_cast<Bytes>(n * v) * 8);
  std::byte* gauge = g.host_alloc(static_cast<Bytes>(n * u) * 8);
  std::byte* out = g.host_alloc(static_cast<Bytes>(n * v) * 8);
  PipelineSpec spec;
  spec.loop_begin = 1;
  spec.loop_end = n - 1;
  spec.arrays = {
      ArraySpec{"psi", MapType::To, psi, 8, {n, v}, SplitSpec{0, Affine{1, -1}, 3}},
      ArraySpec{"U", MapType::To, gauge, 8, {n, u}, SplitSpec{0, Affine{1, -1}, 2}},
      ArraySpec{"out", MapType::From, out, 8, {n, v}, SplitSpec{0, Affine{1, 0}, 1}},
  };
  return spec;
}

// Stencil-shaped region (Fig. 7): one halo'd input grid, one output grid.
PipelineSpec stencil_spec(gpu::Gpu& g, std::int64_t nz, std::int64_t plane) {
  std::byte* in = g.host_alloc(static_cast<Bytes>(nz * plane) * 8);
  std::byte* out = g.host_alloc(static_cast<Bytes>(nz * plane) * 8);
  PipelineSpec spec;
  spec.loop_begin = 1;
  spec.loop_end = nz - 1;
  spec.arrays = {
      ArraySpec{"in", MapType::To, in, 8, {nz, plane}, SplitSpec{0, Affine{1, -1}, 3}},
      ArraySpec{"out", MapType::From, out, 8, {nz, plane}, SplitSpec{0, Affine{1, 0}, 1}},
  };
  return spec;
}

// A kernel whose cost is exactly linear in the iteration count, so the
// analytic hint reproduces the measured kernel term bit-for-bit.
KernelFactory linear_kernel(double flops_per_iter, double bytes_per_iter) {
  return [=](const ChunkContext& ctx) {
    gpu::KernelDesc k;
    k.flops = flops_per_iter * static_cast<double>(ctx.iterations());
    k.bytes = static_cast<Bytes>(bytes_per_iter * static_cast<double>(ctx.iterations()));
    return k;
  };
}

void expect_same_pick(gpu::Gpu& g, const PipelineSpec& spec, const KernelCostHint& hint,
                      const std::vector<std::int64_t>& chunks,
                      const std::vector<int>& streams) {
  TuneOptions dry;
  dry.chunk_candidates = chunks;
  dry.stream_candidates = streams;
  dry.dry_run = true;
  dry.kernel_cost = hint;

  const std::uint64_t allocs_before = g.device_mem_stats().total_allocations;
  const TuneResult predicted =
      autotune(g, spec, linear_kernel(hint.flops_per_iter, hint.bytes_per_iter), dry);
  // The whole dry sweep must not have touched device memory at all.
  EXPECT_EQ(g.device_mem_stats().total_allocations, allocs_before);
  EXPECT_EQ(predicted.explored.size(), chunks.size() * streams.size());

  TuneOptions measured;
  measured.chunk_candidates = chunks;
  measured.stream_candidates = streams;
  measured.model_prefilter = false;
  const TuneResult executed =
      autotune(g, spec, linear_kernel(hint.flops_per_iter, hint.bytes_per_iter), measured);

  EXPECT_EQ(predicted.chunk_size, executed.chunk_size);
  EXPECT_EQ(predicted.num_streams, executed.num_streams);
}

TEST(DryRunAutotune, MatchesExecutedPickOnFig4QcdSweep) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  g.hazards().set_enabled(false);
  const std::int64_t n = 36;  // the paper's large lattice
  const PipelineSpec spec = qcd_spec(g, n);
  // Wilson dslash, 24 applications per transferred dataset (see apps/qcd).
  KernelCostHint hint;
  hint.flops_per_iter = static_cast<double>(n * n * n) * 1320.0 * 24.0;
  hint.bytes_per_iter = static_cast<double>(n * n * n) * 120.0 * 8.0;
  expect_same_pick(g, spec, hint, {1, 2, 4, 8}, {1, 2, 3, 4, 5});
}

TEST(DryRunAutotune, MatchesExecutedPickOnFig7StencilSweep) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  g.hazards().set_enabled(false);
  const std::int64_t nz = 64, plane = 256 * 256;  // Fig. 7's K40m dataset
  const PipelineSpec spec = stencil_spec(g, nz, plane);
  KernelCostHint hint;
  hint.flops_per_iter = static_cast<double>(plane) * 8.0;
  hint.bytes_per_iter = static_cast<double>(plane) * 24.0;
  expect_same_pick(g, spec, hint, {2, 4}, {1, 2, 3, 4, 8});
}

TEST(DryRunAutotune, InfeasibleCandidatesAreMarkedNotDropped) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  g.hazards().set_enabled(false);
  const std::int64_t n = 1024, m = 65536;  // 512 KiB rows
  std::byte* in = g.host_alloc(static_cast<Bytes>(n * m) * 8);
  std::byte* out = g.host_alloc(static_cast<Bytes>(n * m) * 8);
  PipelineSpec spec;
  spec.loop_begin = 0;
  spec.loop_end = n;
  spec.arrays = {
      ArraySpec{"in", MapType::To, in, 8, {n, m}, SplitSpec{0, Affine{1, 0}, 1}},
      ArraySpec{"out", MapType::From, out, 8, {n, m}, SplitSpec{0, Affine{1, 0}, 1}},
  };
  spec.mem_limit = 32 * MiB;  // chunk 64 with 2 streams would need > 128 MiB

  TuneOptions dry;
  dry.chunk_candidates = {1, 4, 64};
  dry.stream_candidates = {2};
  dry.dry_run = true;
  dry.kernel_cost = KernelCostHint{static_cast<double>(m), static_cast<double>(m) * 16.0};
  const TuneResult r = autotune(g, spec, linear_kernel(0, 0), dry);
  EXPECT_LE(r.chunk_size, 4);
  EXPECT_EQ(r.explored.size(), 3u);
  bool infeasible_seen = false;
  for (const auto& c : r.explored) infeasible_seen = infeasible_seen || !c.feasible;
  EXPECT_TRUE(infeasible_seen);
}

}  // namespace
}  // namespace gpupipe::core
