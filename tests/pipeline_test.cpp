// Integration tests for the core pipeline executor: correctness of the
// sliding-window copies, ring-buffer index translation, cross-stream event
// chaining, memory-limit solving, and the adaptive schedule extension.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/pipeline.hpp"
#include "gpu/device_profile.hpp"

namespace gpupipe::core {
namespace {

gpu::DeviceProfile small_profile() {
  auto p = gpu::nvidia_k40m();
  return p;
}

/// Builds a spec that doubles each row of an NxM matrix:
/// out[i][j] = 2 * in[i][j], pipelined over rows with window 1.
PipelineSpec rows_spec(std::vector<double>& in, std::vector<double>& out, std::int64_t n,
                       std::int64_t m, std::int64_t chunk, int streams) {
  PipelineSpec spec;
  spec.chunk_size = chunk;
  spec.num_streams = streams;
  spec.loop_begin = 0;
  spec.loop_end = n;
  spec.arrays = {
      ArraySpec{"in", MapType::To, reinterpret_cast<std::byte*>(in.data()), sizeof(double),
                {n, m}, SplitSpec{0, Affine{1, 0}, 1}},
      ArraySpec{"out", MapType::From, reinterpret_cast<std::byte*>(out.data()), sizeof(double),
                {n, m}, SplitSpec{0, Affine{1, 0}, 1}},
  };
  return spec;
}

KernelFactory doubler(std::int64_t m) {
  return [m](const ChunkContext& ctx) {
    gpu::KernelDesc k;
    k.name = "double";
    k.flops = static_cast<double>(ctx.iterations() * m);
    k.bytes = static_cast<Bytes>(ctx.iterations() * m) * 2 * sizeof(double);
    const BufferView in = ctx.view("in");
    const BufferView out = ctx.view("out");
    const std::int64_t lo = ctx.begin(), hi = ctx.end();
    k.body = [in, out, lo, hi, m] {
      for (std::int64_t r = lo; r < hi; ++r) {
        const double* src = in.slab_ptr(r);
        double* dst = out.slab_ptr(r);
        for (std::int64_t j = 0; j < m; ++j) dst[j] = 2.0 * src[j];
      }
    };
    return k;
  };
}

TEST(Pipeline, ComputesCorrectResultWithWindowOne) {
  gpu::Gpu g(small_profile());
  const std::int64_t n = 64, m = 16;
  std::vector<double> in(n * m), out(n * m, -1.0);
  std::iota(in.begin(), in.end(), 0.0);

  Pipeline p(g, rows_spec(in, out, n, m, 4, 3));
  p.run(doubler(m));

  for (std::int64_t i = 0; i < n * m; ++i) ASSERT_DOUBLE_EQ(out[i], 2.0 * in[i]) << i;
}

class PipelineSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

// Property: result is identical for every chunk-size/stream-count
// combination — partitioning must never change semantics.
TEST_P(PipelineSweep, ResultIndependentOfChunkAndStreams) {
  const auto [chunk, streams] = GetParam();
  gpu::Gpu g(small_profile());
  const std::int64_t n = 37, m = 11;  // deliberately not divisible by chunk
  std::vector<double> in(n * m), out(n * m, -1.0);
  std::iota(in.begin(), in.end(), 1.0);

  Pipeline p(g, rows_spec(in, out, n, m, chunk, streams));
  p.run(doubler(m));

  for (std::int64_t i = 0; i < n * m; ++i) ASSERT_DOUBLE_EQ(out[i], 2.0 * in[i]) << i;
}

INSTANTIATE_TEST_SUITE_P(ChunkStream, PipelineSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 37, 64),
                                            ::testing::Values(1, 2, 3, 4, 8)));

TEST(Pipeline, StencilWindowThreeComputesNeighbours) {
  // out[k] = in[k-1] + in[k] + in[k+1] over the split dimension, the shape
  // of the paper's Fig. 2 example.
  gpu::Gpu g(small_profile());
  const std::int64_t n = 40, m = 8;
  std::vector<double> in(n * m), out(n * m, 0.0);
  std::iota(in.begin(), in.end(), 0.0);

  PipelineSpec spec;
  spec.chunk_size = 1;
  spec.num_streams = 3;
  spec.loop_begin = 1;
  spec.loop_end = n - 1;
  spec.arrays = {
      ArraySpec{"in", MapType::To, reinterpret_cast<std::byte*>(in.data()), sizeof(double),
                {n, m}, SplitSpec{0, Affine{1, -1}, 3}},
      ArraySpec{"out", MapType::From, reinterpret_cast<std::byte*>(out.data()), sizeof(double),
                {n, m}, SplitSpec{0, Affine{1, 0}, 1}},
  };
  Pipeline p(g, spec);
  p.run([m](const ChunkContext& ctx) {
    gpu::KernelDesc k;
    const BufferView in_v = ctx.view("in");
    const BufferView out_v = ctx.view("out");
    const std::int64_t lo = ctx.begin(), hi = ctx.end();
    k.flops = static_cast<double>((hi - lo) * m * 2);
    k.bytes = static_cast<Bytes>((hi - lo) * m) * 4 * sizeof(double);
    k.body = [in_v, out_v, lo, hi, m] {
      for (std::int64_t r = lo; r < hi; ++r) {
        double* dst = out_v.slab_ptr(r);
        for (std::int64_t j = 0; j < m; ++j)
          dst[j] = in_v.slab_ptr(r - 1)[j] + in_v.slab_ptr(r)[j] + in_v.slab_ptr(r + 1)[j];
      }
    };
    return k;
  });

  for (std::int64_t r = 1; r < n - 1; ++r)
    for (std::int64_t j = 0; j < m; ++j)
      ASSERT_DOUBLE_EQ(out[r * m + j],
                       in[(r - 1) * m + j] + in[r * m + j] + in[(r + 1) * m + j]);
}

TEST(Pipeline, SlidingWindowCopiesEachInputSliceOnce) {
  gpu::Gpu g(small_profile());
  const std::int64_t n = 32, m = 4;
  std::vector<double> in(n * m, 1.0), out(n * m);
  Pipeline p(g, rows_spec(in, out, n, m, 2, 2));
  p.run(doubler(m));
  // Every input row crosses the bus exactly once (window 1, no halo).
  EXPECT_EQ(p.stats().h2d_bytes, static_cast<Bytes>(n * m) * sizeof(double));
  EXPECT_EQ(p.stats().d2h_bytes, static_cast<Bytes>(n * m) * sizeof(double));
  EXPECT_EQ(p.stats().chunks, 16);
  EXPECT_EQ(p.stats().kernels, 16);
}

TEST(Pipeline, HaloRowsAreNotRecopied) {
  gpu::Gpu g(small_profile());
  const std::int64_t n = 32, m = 4;
  std::vector<double> in(n * m, 1.0), out(n * m);
  PipelineSpec spec;
  spec.chunk_size = 1;
  spec.num_streams = 2;
  spec.loop_begin = 1;
  spec.loop_end = n - 1;
  spec.arrays = {
      ArraySpec{"in", MapType::To, reinterpret_cast<std::byte*>(in.data()), sizeof(double),
                {n, m}, SplitSpec{0, Affine{1, -1}, 3}},
      ArraySpec{"out", MapType::From, reinterpret_cast<std::byte*>(out.data()), sizeof(double),
                {n, m}, SplitSpec{0, Affine{1, 0}, 1}},
  };
  Pipeline p(g, spec);
  p.run([m](const ChunkContext& ctx) {
    gpu::KernelDesc k;
    const BufferView out_v = ctx.view("out");
    const std::int64_t lo = ctx.begin(), hi = ctx.end();
    k.body = [out_v, lo, hi, m] {
      for (std::int64_t r = lo; r < hi; ++r)
        for (std::int64_t j = 0; j < m; ++j) out_v.slab_ptr(r)[j] = 1.0;
    };
    return k;
  });
  // Despite the window of 3, the sliding window transfers each of the n
  // input rows exactly once.
  EXPECT_EQ(p.stats().h2d_bytes, static_cast<Bytes>(n * m) * sizeof(double));
}

TEST(Pipeline, BufferFootprintIsFarSmallerThanArrays) {
  gpu::Gpu g(small_profile());
  const std::int64_t n = 4096, m = 64;
  std::vector<double> in(n * m, 1.0), out(n * m);
  Pipeline p(g, rows_spec(in, out, n, m, 2, 3));
  const Bytes full = 2 * static_cast<Bytes>(n * m) * sizeof(double);
  EXPECT_LT(p.buffer_footprint(), full / 100);
}

TEST(Pipeline, MemLimitShrinksChunkSize) {
  gpu::Gpu g(small_profile());
  const std::int64_t n = 1024, m = 1024;  // 8 MiB per row-chunk at chunk 1024
  std::vector<double> in(n * m, 1.0), out(n * m);
  PipelineSpec spec = rows_spec(in, out, n, m, 256, 2);
  spec.mem_limit = 2 * MiB;
  Pipeline p(g, spec);
  EXPECT_LT(p.effective_chunk_size(), 256);
  EXPECT_LE(p.buffer_footprint(), 2 * MiB);
  p.run(doubler(m));
  for (std::int64_t i = 0; i < n * m; ++i) ASSERT_DOUBLE_EQ(out[i], 2.0) << i;
}

TEST(Pipeline, UnsatisfiableMemLimitThrows) {
  gpu::Gpu g(small_profile());
  const std::int64_t n = 16, m = 1024;
  std::vector<double> in(n * m, 1.0), out(n * m);
  PipelineSpec spec = rows_spec(in, out, n, m, 1, 1);
  spec.mem_limit = 4 * KiB;  // smaller than a single row pair
  EXPECT_THROW(Pipeline(g, spec), gpu::OomError);
}

TEST(Pipeline, RunIsRepeatable) {
  gpu::Gpu g(small_profile());
  const std::int64_t n = 16, m = 8;
  std::vector<double> in(n * m), out(n * m);
  std::iota(in.begin(), in.end(), 0.0);
  Pipeline p(g, rows_spec(in, out, n, m, 2, 2));
  p.run(doubler(m));
  // Second run consumes the outputs of the first.
  in = out;
  p.run(doubler(m));
  for (std::int64_t i = 0; i < n * m; ++i) ASSERT_DOUBLE_EQ(out[i], 4.0 * i);
}

TEST(Pipeline, OverlapBeatsSerialExecution) {
  // With >= 2 streams the virtual finish time must be smaller than with 1
  // stream (that is the whole point of the paper).
  // Overlap needs kernel time comparable to transfer time, so this variant
  // of the kernel is compute-heavy.
  const std::int64_t n = 256, m = 2048;
  auto heavy_doubler = [&](const ChunkContext& ctx) {
    gpu::KernelDesc k = doubler(m)(ctx);
    k.bytes = static_cast<Bytes>(ctx.iterations() * m) * sizeof(double) * 256;
    return k;
  };
  auto run_with = [&](int streams) {
    gpu::Gpu g(small_profile());
    g.hazards().set_enabled(false);
    std::vector<double> in(n * m, 1.0), out(n * m);
    Pipeline p(g, rows_spec(in, out, n, m, 8, streams));
    const SimTime t0 = g.host_now();
    p.run(heavy_doubler);
    return g.host_now() - t0;
  };
  const SimTime t1 = run_with(1);
  const SimTime t2 = run_with(2);
  EXPECT_LT(t2, 0.9 * t1);
}

TEST(Pipeline, HazardTrackerAcceptsTheSchedule) {
  // Hazard validation is enabled by default in these tests; a full sweep
  // finishing without HazardError proves every dependency is explicit.
  gpu::Gpu g(small_profile());
  ASSERT_TRUE(g.hazards().enabled());
  const std::int64_t n = 64, m = 32;
  std::vector<double> in(n * m, 3.0), out(n * m);
  Pipeline p(g, rows_spec(in, out, n, m, 3, 4));
  EXPECT_NO_THROW(p.run(doubler(m)));
}

TEST(Pipeline, AdaptiveScheduleMatchesStaticResult) {
  gpu::Gpu g(small_profile());
  const std::int64_t n = 100, m = 64;
  std::vector<double> in(n * m), out(n * m);
  std::iota(in.begin(), in.end(), 0.0);
  PipelineSpec spec = rows_spec(in, out, n, m, 1, 2);
  spec.schedule = ScheduleKind::Adaptive;
  Pipeline p(g, spec);
  p.run(doubler(m));
  for (std::int64_t i = 0; i < n * m; ++i) ASSERT_DOUBLE_EQ(out[i], 2.0 * in[i]);
}

TEST(Pipeline, AdaptivePicksLargerChunksForTinyIterations) {
  // Tiny per-iteration work: per-chunk overheads dominate, so the adaptive
  // scheduler should coarsen the chunk size above the initial 1.
  gpu::Gpu g(small_profile());
  const std::int64_t n = 512, m = 4;
  std::vector<double> in(n * m, 1.0), out(n * m);
  PipelineSpec spec = rows_spec(in, out, n, m, 1, 2);
  spec.schedule = ScheduleKind::Adaptive;
  Pipeline p(g, spec);
  p.run(doubler(m));
  EXPECT_GT(p.effective_chunk_size(), 1);
}

TEST(Pipeline, ValidatesSpec) {
  gpu::Gpu g(small_profile());
  PipelineSpec spec;  // empty: no arrays, empty loop
  EXPECT_THROW(Pipeline(g, spec), Error);
}

TEST(Pipeline, UnknownViewNameThrows) {
  gpu::Gpu g(small_profile());
  const std::int64_t n = 8, m = 4;
  std::vector<double> in(n * m, 1.0), out(n * m);
  Pipeline p(g, rows_spec(in, out, n, m, 2, 2));
  EXPECT_THROW(p.run([](const ChunkContext& ctx) {
    (void)ctx.view("nonexistent");
    return gpu::KernelDesc{};
  }),
               Error);
}

TEST(Pipeline, RingLenFormulaCoversInFlightWindows) {
  ArraySpec a;
  a.split = SplitSpec{0, Affine{1, -1}, 3};
  // 2 streams, chunk 4 (stride 4): two in-flight windows (8 slots) plus the
  // 2-index halo rounded up to the stride => 12.
  EXPECT_EQ(Pipeline::ring_len_for(a, 4, 2), 12);
  // Window does not exceed the per-iteration stride: no halo slots needed.
  a.split = SplitSpec{0, Affine{2, 0}, 2};
  EXPECT_EQ(Pipeline::ring_len_for(a, 3, 2), 12);
  a.split = SplitSpec{0, Affine{1, 0}, 1};
  EXPECT_EQ(Pipeline::ring_len_for(a, 512, 2), 1024);
}

}  // namespace
}  // namespace gpupipe::core
