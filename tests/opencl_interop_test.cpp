// Tests for the OpenCL-flavoured interop (§IV's AMD path).
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "acc/opencl_interop.hpp"
#include "gpu/device_profile.hpp"

namespace gpupipe::acc {
namespace {

TEST(ClInterop, BufferRoundTrip) {
  gpu::Gpu g(gpu::amd_hd7970());
  std::vector<double> in(128), out(128, 0.0);
  std::iota(in.begin(), in.end(), 0.0);

  ClMem buf = cl_create_buffer(g, 128 * sizeof(double));
  EXPECT_TRUE(buf.valid());
  cl_enqueue_write_buffer(g, g.default_stream(), buf, 0,
                          reinterpret_cast<std::byte*>(in.data()), 128 * sizeof(double));
  cl_enqueue_read_buffer(g, g.default_stream(), buf, 0,
                         reinterpret_cast<std::byte*>(out.data()), 128 * sizeof(double));
  g.synchronize();
  EXPECT_EQ(in, out);
  cl_release_buffer(g, buf);
  EXPECT_FALSE(buf.valid());
}

TEST(ClInterop, OffsetsAddressSubranges) {
  gpu::Gpu g(gpu::amd_hd7970());
  std::vector<double> in(16, 5.0), out(8, 0.0);
  ClMem buf = cl_create_buffer(g, 32 * sizeof(double));
  cl_enqueue_write_buffer(g, g.default_stream(), buf, 8 * sizeof(double),
                          reinterpret_cast<std::byte*>(in.data()), 16 * sizeof(double));
  cl_enqueue_read_buffer(g, g.default_stream(), buf, 12 * sizeof(double),
                         reinterpret_cast<std::byte*>(out.data()), 8 * sizeof(double));
  g.synchronize();
  for (double v : out) EXPECT_DOUBLE_EQ(v, 5.0);
  cl_release_buffer(g, buf);
}

TEST(ClInterop, BoundsAreEnforced) {
  gpu::Gpu g(gpu::amd_hd7970());
  std::vector<double> host(64, 0.0);
  ClMem buf = cl_create_buffer(g, 32 * sizeof(double));
  EXPECT_THROW(cl_enqueue_write_buffer(g, g.default_stream(), buf, 16 * sizeof(double),
                                       reinterpret_cast<std::byte*>(host.data()),
                                       32 * sizeof(double)),
               Error);
  EXPECT_THROW(cl_enqueue_read_buffer(g, g.default_stream(), ClMem{}, 0,
                                      reinterpret_cast<std::byte*>(host.data()), 8),
               Error);
  cl_release_buffer(g, buf);
}

TEST(ClInterop, ExtractedPointerFeedsPointerBasedKernels) {
  // The paper's trick: pull the device address out of the opaque handle
  // once, then run deviceptr-style kernels against it.
  gpu::Gpu g(gpu::amd_hd7970());
  std::vector<double> in(64, 2.0), out(64, 0.0);
  ClMem buf = cl_create_buffer(g, 64 * sizeof(double));
  cl_enqueue_write_buffer(g, g.default_stream(), buf, 0,
                          reinterpret_cast<std::byte*>(in.data()), 64 * sizeof(double));
  g.synchronize();

  double* raw = reinterpret_cast<double*>(cl_extract_device_pointer(g, buf));
  ASSERT_NE(raw, nullptr);
  gpu::KernelDesc k;
  k.flops = 64;
  k.body = [raw] {
    for (int i = 0; i < 64; ++i) raw[i] *= 3.0;
  };
  g.launch(g.default_stream(), std::move(k));
  cl_enqueue_read_buffer(g, g.default_stream(), buf, 0,
                         reinterpret_cast<std::byte*>(out.data()), 64 * sizeof(double));
  g.synchronize();
  for (double v : out) EXPECT_DOUBLE_EQ(v, 6.0);
  cl_release_buffer(g, buf);
}

TEST(ClInterop, ExtractionCostIsOneLaunchPlusATinyReadback) {
  gpu::Gpu g(gpu::amd_hd7970(), gpu::ExecMode::Modeled);
  ClMem buf = cl_create_buffer(g, 1 * MiB);
  const SimTime t0 = g.host_now();
  (void)cl_extract_device_pointer(g, buf);
  const SimTime cost = g.host_now() - t0;
  // One kernel launch + one word-sized transfer + a handful of API calls:
  // well under a millisecond even on the AMD profile ("little performance
  // impact" when done once).
  EXPECT_LT(cost, msec(1.0));
  cl_release_buffer(g, buf);
}

TEST(ClInterop, ExtractedPointerWorksInModeledModeToo) {
  gpu::Gpu g(gpu::amd_hd7970(), gpu::ExecMode::Modeled);
  ClMem buf = cl_create_buffer(g, 1 * MiB);
  std::byte* raw = cl_extract_device_pointer(g, buf);
  // The address is usable for further (modeled) transfers.
  std::byte* host = g.host_alloc(1 * MiB);
  EXPECT_NO_THROW(g.memcpy_h2d_async(raw, host, 1 * MiB, g.default_stream()));
  g.synchronize();
  cl_release_buffer(g, buf);
}

}  // namespace
}  // namespace gpupipe::acc
