// Executable EXPERIMENTS.md: the paper-shape claims each figure bench
// reproduces, pinned as assertions so calibration drift fails loudly. These
// run the figure workloads at (mostly) reduced scale in Modeled mode.
#include <gtest/gtest.h>

#include "apps/conv3d.hpp"
#include "apps/matmul.hpp"
#include "apps/qcd.hpp"
#include "apps/stencil.hpp"
#include "gpu/device_profile.hpp"

namespace gpupipe {
namespace {

template <typename Fn>
apps::Measurement modeled(const gpu::DeviceProfile& p, Fn&& fn) {
  gpu::Gpu g(p, gpu::ExecMode::Modeled);
  g.hazards().set_enabled(false);
  return fn(g);
}

// --- Fig. 3: naive QCD spends ~half its time in transfers; pipelined
// speedup grows with lattice size toward the 2x bound ---

TEST(FigureShapes, Fig3TransferShareAndGrowth) {
  apps::QcdConfig small;
  small.n = 12;
  apps::QcdConfig large;
  large.n = 36;

  const auto naive_l = modeled(gpu::nvidia_k40m(),
                               [&](gpu::Gpu& g) { return apps::qcd_naive(g, large); });
  const double share = (naive_l.h2d_time + naive_l.d2h_time) / naive_l.seconds;
  EXPECT_GT(share, 0.40);
  EXPECT_LT(share, 0.60);

  auto speedup = [&](const apps::QcdConfig& cfg) {
    const auto n = modeled(gpu::nvidia_k40m(),
                           [&](gpu::Gpu& g) { return apps::qcd_naive(g, cfg); });
    const auto p = modeled(gpu::nvidia_k40m(),
                           [&](gpu::Gpu& g) { return apps::qcd_pipelined(g, cfg); });
    return n.seconds / p.seconds;
  };
  const double s_small = speedup(small);
  const double s_large = speedup(large);
  EXPECT_GT(s_small, 1.2);
  EXPECT_GT(s_large, s_small);  // grows with size
  EXPECT_LT(s_large, 2.0);      // bounded by perfect overlap
  EXPECT_GT(s_large, 1.7);      // approaches it
}

// --- Fig. 4: 2 streams >> 1 stream; more streams roughly flat ---

TEST(FigureShapes, Fig4StreamCountShape) {
  auto time_with = [&](int streams) {
    apps::QcdConfig cfg;
    cfg.n = 24;
    cfg.num_streams = streams;
    return modeled(gpu::nvidia_k40m(),
                   [&](gpu::Gpu& g) { return apps::qcd_pipelined_buffer(g, cfg); })
        .seconds;
  };
  const double t1 = time_with(1), t2 = time_with(2), t4 = time_with(4);
  EXPECT_LT(t2, 0.7 * t1);               // big win from the second stream
  EXPECT_NEAR(t4 / t2, 1.0, 0.05);       // then flat
}

// --- Fig. 5 headline: the runtime's speedups land in the paper's band ---

TEST(FigureShapes, Fig5SpeedupBand) {
  apps::Conv3dConfig conv;
  conv.ni = conv.nj = conv.nk = 400;  // reduced-scale volume, same regime
  conv.chunk_size = 2;                // keep segments near bandwidth saturation
  const auto n = modeled(gpu::nvidia_k40m(),
                         [&](gpu::Gpu& g) { return apps::conv3d_naive(g, conv); });
  const auto b = modeled(gpu::nvidia_k40m(),
                         [&](gpu::Gpu& g) { return apps::conv3d_pipelined_buffer(g, conv); });
  const double speedup = n.seconds / b.seconds;
  EXPECT_GT(speedup, 1.3);
  EXPECT_LT(speedup, 1.8);
}

// --- Fig. 6: memory savings grow with dataset size; conv saves ~an order
// of magnitude more than its buffers cost ---

TEST(FigureShapes, Fig6MemorySavings) {
  apps::Conv3dConfig conv;
  conv.ni = conv.nj = conv.nk = 304;
  const auto n = modeled(gpu::nvidia_k40m(),
                         [&](gpu::Gpu& g) { return apps::conv3d_naive(g, conv); });
  const auto b = modeled(gpu::nvidia_k40m(),
                         [&](gpu::Gpu& g) { return apps::conv3d_pipelined_buffer(g, conv); });
  const double saving = 1.0 - static_cast<double>(b.reported_device_mem) /
                                  static_cast<double>(n.reported_device_mem);
  EXPECT_GT(saving, 0.75);
}

// --- Fig. 8: on the AMD profile the default fine split loses to Naive,
// while a single-digit chunk count wins ---

TEST(FigureShapes, Fig8AmdChunkCountShape) {
  apps::Conv3dConfig cfg;
  cfg.ni = cfg.nj = cfg.nk = 256;
  const auto naive = modeled(gpu::amd_hd7970(),
                             [&](gpu::Gpu& g) { return apps::conv3d_naive(g, cfg); });
  auto pipelined_at = [&](std::int64_t chunk) {
    apps::Conv3dConfig c = cfg;
    c.chunk_size = chunk;
    return modeled(gpu::amd_hd7970(),
                   [&](gpu::Gpu& g) { return apps::conv3d_pipelined(g, c); })
        .seconds;
  };
  const double t_default = pipelined_at(1);             // one plane per chunk
  const double t_mid = pipelined_at((cfg.ni - 2) / 6);  // ~6 chunks
  EXPECT_GT(t_default, naive.seconds);          // default split loses
  EXPECT_LT(t_mid, naive.seconds);              // coarse split wins
  EXPECT_GT(naive.seconds / t_mid, 1.2);
}

// --- Fig. 9/10: the OOM boundary and the buffer version's survival ---

TEST(FigureShapes, Fig9OomBoundary) {
  {
    gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
    g.hazards().set_enabled(false);
    apps::MatmulConfig fits;
    fits.n = 14336;
    EXPECT_NO_THROW(apps::matmul_block_shared(g, fits));
  }
  {
    gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
    g.hazards().set_enabled(false);
    apps::MatmulConfig ooms;
    ooms.n = 20480;
    EXPECT_THROW(apps::matmul_block_shared(g, ooms), gpu::OomError);
    ooms.chunk_cols = 512;
    EXPECT_NO_THROW(apps::matmul_pipeline_buffer(g, ooms));
  }
}

TEST(FigureShapes, Fig9BufferMatchesBlockShared) {
  apps::MatmulConfig cfg;
  cfg.n = 8192;
  cfg.chunk_cols = 512;
  const auto tiled = modeled(gpu::nvidia_k40m(),
                             [&](gpu::Gpu& g) { return apps::matmul_block_shared(g, cfg); });
  const auto piped = modeled(gpu::nvidia_k40m(), [&](gpu::Gpu& g) {
    return apps::matmul_pipeline_buffer(g, cfg);
  });
  // "almost the same performance" — within 15%.
  EXPECT_NEAR(piped.seconds / tiled.seconds, 1.0, 0.15);
}

}  // namespace
}  // namespace gpupipe
