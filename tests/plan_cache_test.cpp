// Plan compilation cache: LRU behaviour, fingerprint soundness, shared
// plans, concurrency, and the parallel autotune bit-identity contract.
#include <gtest/gtest.h>

#include <atomic>
#include <clocale>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/autotune.hpp"
#include "core/pipeline.hpp"
#include "core/plan_cache.hpp"
#include "gpu/device_profile.hpp"

namespace gpupipe::core {
namespace {

// One halo'd input grid, one output grid (the Fig. 7 stencil shape).
PipelineSpec stencil_spec(gpu::Gpu& g, std::int64_t nz, std::int64_t plane,
                          bool pinned = true) {
  std::byte* in = g.host_alloc(static_cast<Bytes>(nz * plane) * 8, pinned);
  std::byte* out = g.host_alloc(static_cast<Bytes>(nz * plane) * 8, pinned);
  PipelineSpec spec;
  spec.loop_begin = 1;
  spec.loop_end = nz - 1;
  spec.arrays = {
      ArraySpec{"in", MapType::To, in, 8, {nz, plane}, SplitSpec{0, Affine{1, -1}, 3}},
      ArraySpec{"out", MapType::From, out, 8, {nz, plane}, SplitSpec{0, Affine{1, 0}, 1}},
  };
  return spec;
}

KernelFactory linear_kernel(double flops_per_iter, double bytes_per_iter) {
  return [=](const ChunkContext& ctx) {
    gpu::KernelDesc k;
    k.flops = flops_per_iter * static_cast<double>(ctx.iterations());
    k.bytes = static_cast<Bytes>(bytes_per_iter * static_cast<double>(ctx.iterations()));
    return k;
  };
}

// The global instance is process-wide state shared with other tests in this
// binary: pin it to a known configuration before each test.
void reset_global_cache() {
  PlanCache& c = PlanCache::instance();
  c.set_capacity(PlanCache::kDefaultCapacity);
  c.clear();
  c.reset_stats();
}

TEST(PlanCache, HitMissAndLruEviction) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  g.hazards().set_enabled(false);
  PlanCache cache(2);

  PipelineSpec a = stencil_spec(g, 16, 64);
  PipelineSpec b = stencil_spec(g, 24, 64);
  PipelineSpec c = stencil_spec(g, 32, 64);

  const Bytes fa = cache.footprint(g, a, 2, 2);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.footprint(g, a, 2, 2), fa);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().entries, 1);

  cache.footprint(g, b, 2, 2);  // fills slot 2; LRU order: b, a
  cache.footprint(g, a, 2, 2);  // touch a back to MRU: a, b
  EXPECT_EQ(cache.stats().hits, 2);
  cache.footprint(g, c, 2, 2);  // evicts the LRU entry, which is now b
  EXPECT_EQ(cache.stats().entries, 2);
  EXPECT_EQ(cache.stats().evictions, 1);

  cache.footprint(g, a, 2, 2);  // a survived the eviction
  EXPECT_EQ(cache.stats().hits, 3);
  cache.footprint(g, b, 2, 2);  // b did not
  EXPECT_EQ(cache.stats().misses, 4);

  // Different shape, different key.
  cache.footprint(g, a, 4, 2);
  EXPECT_EQ(cache.stats().misses, 5);
}

TEST(PlanCache, CapacityZeroDisables) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  g.hazards().set_enabled(false);
  PlanCache cache(0);
  PipelineSpec a = stencil_spec(g, 16, 64);
  const Bytes direct = predicted_pipeline_footprint(g, a, 2, 2);
  EXPECT_EQ(cache.footprint(g, a, 2, 2), direct);
  EXPECT_FALSE(cache.enabled());
  EXPECT_EQ(cache.stats().entries, 0);
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.stats().misses, 0);
}

TEST(PlanCache, SetCapacityEvictsDown) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  g.hazards().set_enabled(false);
  PlanCache cache(8);
  for (std::int64_t nz : {16, 24, 32, 40}) {
    PipelineSpec s = stencil_spec(g, nz, 64);
    cache.footprint(g, s, 2, 2);
  }
  EXPECT_EQ(cache.stats().entries, 4);
  cache.set_capacity(1);
  EXPECT_EQ(cache.stats().entries, 1);
  EXPECT_EQ(cache.stats().evictions, 3);
  EXPECT_GT(cache.stats().bytes, 0);
}

TEST(PlanCache, FingerprintCoversEveryPlanningInput) {
  // Shared host context: pinned-ness of g's allocations must be visible to
  // the twin device for its fingerprints to agree.
  auto ctx = gpu::make_shared_context();
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled, ctx);
  g.hazards().set_enabled(false);
  const PipelineSpec base = stencil_spec(g, 16, 64);
  const std::string key = PlanCache::fingerprint(g, base, 2, 2);

  // Shape is part of the key.
  EXPECT_NE(PlanCache::fingerprint(g, base, 4, 2), key);
  EXPECT_NE(PlanCache::fingerprint(g, base, 2, 3), key);

  // Every spec field the plan depends on changes the key.
  PipelineSpec v = base;
  v.loop_end -= 1;
  EXPECT_NE(PlanCache::fingerprint(g, v, 2, 2), key);
  v = base;
  v.opt_level = 2;
  EXPECT_NE(PlanCache::fingerprint(g, v, 2, 2), key);
  v = base;
  v.arrays[0].map = MapType::ToFrom;
  EXPECT_NE(PlanCache::fingerprint(g, v, 2, 2), key);
  v = base;
  v.arrays[0].elem_size = 4;
  EXPECT_NE(PlanCache::fingerprint(g, v, 2, 2), key);
  v = base;
  v.arrays[0].dims[1] = 128;
  EXPECT_NE(PlanCache::fingerprint(g, v, 2, 2), key);
  v = base;
  v.arrays[0].split.window = 5;
  EXPECT_NE(PlanCache::fingerprint(g, v, 2, 2), key);
  v = base;
  v.arrays[0].split.start = Affine{1, 0};
  EXPECT_NE(PlanCache::fingerprint(g, v, 2, 2), key);
  v = base;
  v.arrays[0].name = "in2";
  EXPECT_NE(PlanCache::fingerprint(g, v, 2, 2), key);

  // The device profile is part of the key (content, not identity).
  gpu::Gpu amd(gpu::amd_hd7970(), gpu::ExecMode::Modeled);
  amd.hazards().set_enabled(false);
  EXPECT_NE(PlanCache::fingerprint(amd, base, 2, 2), key);
  gpu::Gpu twin(gpu::nvidia_k40m(), gpu::ExecMode::Modeled, ctx);
  twin.hazards().set_enabled(false);
  EXPECT_EQ(PlanCache::fingerprint(twin, base, 2, 2), key);

  // Pinned-ness of the host arrays is baked into transfer costs.
  const PipelineSpec pageable = stencil_spec(g, 16, 64, /*pinned=*/false);
  EXPECT_NE(PlanCache::fingerprint(g, pageable, 2, 2), key);

  // Host pointer identity and mem_limit must NOT be in the key: plans are
  // pointer-free and the limit only enters through the solved shape.
  const PipelineSpec other_buffers = stencil_spec(g, 16, 64);
  EXPECT_EQ(PlanCache::fingerprint(g, other_buffers, 2, 2), key);
  v = base;
  v.mem_limit = 64 * MiB;
  EXPECT_EQ(PlanCache::fingerprint(g, v, 2, 2), key);
}

TEST(PlanCache, WindowFnAndAdaptiveSpecsBypass) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  g.hazards().set_enabled(false);
  PipelineSpec spec = stencil_spec(g, 16, 64);
  EXPECT_TRUE(PlanCache::fingerprintable(spec));
  PipelineSpec fn = spec;
  fn.arrays[0].split.window_fn = [](std::int64_t k) {
    return std::pair<std::int64_t, std::int64_t>{k - 1, k + 2};
  };
  EXPECT_FALSE(PlanCache::fingerprintable(fn));
  PipelineSpec adaptive = spec;
  adaptive.schedule = ScheduleKind::Adaptive;
  EXPECT_FALSE(PlanCache::fingerprintable(adaptive));

  // A bypassing spec still computes (and stores nothing).
  PlanCache cache(4);
  const Bytes direct = predicted_pipeline_footprint(g, fn, 2, 2);
  EXPECT_EQ(cache.footprint(g, fn, 2, 2), direct);
  EXPECT_EQ(cache.stats().entries, 0);
}

TEST(PlanCache, CachedResultsMatchDirectComputation) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  g.hazards().set_enabled(false);
  PlanCache cache(16);
  PipelineSpec spec = stencil_spec(g, 32, 256);
  spec.chunk_size = 4;
  spec.num_streams = 3;

  EXPECT_EQ(cache.footprint(g, spec, 4, 3), predicted_pipeline_footprint(g, spec, 4, 3));

  DryRunCost cost;
  cost.flops_per_iter = 256.0 * 8.0;
  cost.bytes_per_iter = 256.0 * 24.0;
  cost.live_streams = 3;
  PlanCache::Compiled compiled = cache.compile(g, spec);
  const DryRunResult direct = dry_run(*compiled.plan, g.profile(), cost);
  EXPECT_EQ(cache.estimate(g, spec, cost), direct.makespan);
  // Second estimate is a pure lookup of the identical value.
  const auto hits_before = cache.stats().hits;
  EXPECT_EQ(cache.estimate(g, spec, cost), direct.makespan);
  EXPECT_GT(cache.stats().hits, hits_before);

  // A different kernel cost is a different memo: the call misses even
  // though the plan itself is already cached.
  DryRunCost heavier = cost;
  heavier.bytes_per_iter *= 2.0;
  const auto misses_before = cache.stats().misses;
  cache.estimate(g, spec, heavier);
  EXPECT_GT(cache.stats().misses, misses_before);
}

TEST(PlanCache, PipelinesShareTheCachedPlan) {
  reset_global_cache();
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  g.hazards().set_enabled(false);
  PipelineSpec spec = stencil_spec(g, 16, 64);
  spec.chunk_size = 2;
  spec.num_streams = 2;

  Pipeline p1(g, spec);
  Pipeline p2(g, spec);
  EXPECT_EQ(&p1.execution_plan(), &p2.execution_plan());

  // With the cache disabled each pipeline compiles privately.
  PlanCache::instance().set_capacity(0);
  Pipeline p3(g, spec);
  Pipeline p4(g, spec);
  EXPECT_NE(&p3.execution_plan(), &p4.execution_plan());
  EXPECT_EQ(p3.execution_plan().nodes.size(), p1.execution_plan().nodes.size());
  reset_global_cache();
}

TEST(PlanCache, MetricsExportMatchesStats) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  g.hazards().set_enabled(false);
  PlanCache cache(4);
  PipelineSpec a = stencil_spec(g, 16, 64);
  cache.footprint(g, a, 2, 2);
  cache.footprint(g, a, 2, 2);

  telemetry::Registry reg;
  cache.collect_metrics(reg);
  EXPECT_EQ(reg.counter_value("plan_cache.hits"), 1);
  EXPECT_EQ(reg.counter_value("plan_cache.misses"), 1);
  EXPECT_EQ(reg.counter_value("plan_cache.evictions"), 0);
  EXPECT_EQ(reg.gauge_value("plan_cache.entries"), 1.0);
  EXPECT_EQ(reg.gauge_value("plan_cache.capacity"), 4.0);
  EXPECT_DOUBLE_EQ(reg.gauge_value("plan_cache.hit_rate"), 0.5);
  EXPECT_GT(reg.gauge_value("plan_cache.bytes"), 0.0);

  telemetry::Registry prefixed;
  cache.collect_metrics(prefixed, "dev0.");
  EXPECT_EQ(prefixed.counter_value("dev0.plan_cache.hits"), 1);
}

TEST(PlanCache, ConcurrentReadersAgreeWithSerial) {
  reset_global_cache();
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  g.hazards().set_enabled(false);
  std::vector<PipelineSpec> specs;
  for (std::int64_t nz : {16, 24, 32, 48}) {
    PipelineSpec s = stencil_spec(g, nz, 128);
    s.chunk_size = 2;
    s.num_streams = 2;
    specs.push_back(s);
  }
  DryRunCost cost;
  cost.flops_per_iter = 128.0 * 8.0;
  cost.bytes_per_iter = 128.0 * 24.0;
  cost.live_streams = 2;

  std::vector<Bytes> want_fp;
  std::vector<SimTime> want_est;
  for (const auto& s : specs) {
    want_fp.push_back(PlanCache::instance().footprint(g, s, 2, 2));
    want_est.push_back(PlanCache::instance().estimate(g, s, cost));
  }

  PlanCache::instance().clear();  // force the threads to race on the misses
  std::atomic<int> mismatches{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < 8; ++t) {
    pool.emplace_back([&] {
      for (int r = 0; r < 20; ++r) {
        for (std::size_t i = 0; i < specs.size(); ++i) {
          if (PlanCache::instance().footprint(g, specs[i], 2, 2) != want_fp[i])
            mismatches.fetch_add(1);
          if (PlanCache::instance().estimate(g, specs[i], cost) != want_est[i])
            mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  // Three memos per spec: footprint, the estimate, and the compiled plan
  // the estimate's miss path built.
  const PlanCacheStats s = PlanCache::instance().stats();
  EXPECT_EQ(s.entries, static_cast<std::int64_t>(3 * specs.size()));
  EXPECT_GT(s.hits, 0);
  reset_global_cache();
}

// --- Autotune: normalization and parallel bit-identity ---

void expect_identical(const TuneResult& a, const TuneResult& b) {
  EXPECT_EQ(a.chunk_size, b.chunk_size);
  EXPECT_EQ(a.num_streams, b.num_streams);
  EXPECT_EQ(a.best_time, b.best_time);
  ASSERT_EQ(a.explored.size(), b.explored.size());
  for (std::size_t i = 0; i < a.explored.size(); ++i) {
    EXPECT_EQ(a.explored[i].chunk_size, b.explored[i].chunk_size);
    EXPECT_EQ(a.explored[i].num_streams, b.explored[i].num_streams);
    EXPECT_EQ(a.explored[i].measured, b.explored[i].measured);  // exact, not near
    EXPECT_EQ(a.explored[i].feasible, b.explored[i].feasible);
  }
}

TEST(PlanCacheAutotune, ParallelDrySweepIsBitIdenticalToSerial) {
  reset_global_cache();
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  g.hazards().set_enabled(false);
  const PipelineSpec spec = stencil_spec(g, 64, 256 * 256);
  KernelCostHint hint;
  hint.flops_per_iter = 256.0 * 256.0 * 8.0;
  hint.bytes_per_iter = 256.0 * 256.0 * 24.0;

  TuneOptions opts;
  opts.dry_run = true;
  opts.kernel_cost = hint;
  opts.tune_jobs = 1;
  const TuneResult serial =
      autotune(g, spec, linear_kernel(hint.flops_per_iter, hint.bytes_per_iter), opts);
  for (int jobs : {0, 2, 5}) {
    opts.tune_jobs = jobs;
    PlanCache::instance().clear();  // identity must not depend on warm entries
    const TuneResult parallel =
        autotune(g, spec, linear_kernel(hint.flops_per_iter, hint.bytes_per_iter), opts);
    expect_identical(serial, parallel);
  }
  reset_global_cache();
}

TEST(PlanCacheAutotune, ParallelSweepIdenticalWithInfeasibleCandidates) {
  reset_global_cache();
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  g.hazards().set_enabled(false);
  const std::int64_t n = 1024, m = 65536;
  PipelineSpec spec = stencil_spec(g, n, m);
  spec.mem_limit = 32 * MiB;  // large chunks cannot fit

  TuneOptions opts;
  opts.chunk_candidates = {1, 4, 64};
  opts.stream_candidates = {2};
  opts.dry_run = true;
  opts.kernel_cost = KernelCostHint{static_cast<double>(m), static_cast<double>(m) * 16.0};
  opts.tune_jobs = 1;
  const TuneResult serial = autotune(g, spec, linear_kernel(0, 0), opts);
  opts.tune_jobs = 4;
  const TuneResult parallel = autotune(g, spec, linear_kernel(0, 0), opts);
  expect_identical(serial, parallel);
  bool infeasible_seen = false;
  for (const auto& c : serial.explored) infeasible_seen = infeasible_seen || !c.feasible;
  EXPECT_TRUE(infeasible_seen);
  reset_global_cache();
}

TEST(PlanCacheAutotune, CandidatesAreDedupedAndClampedToTrip) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  g.hazards().set_enabled(false);
  const PipelineSpec spec = stencil_spec(g, 16, 64);  // trip count 14
  KernelCostHint hint{64.0 * 8.0, 64.0 * 24.0};

  TuneOptions opts;
  opts.chunk_candidates = {4, 4, 2, 32, 64};  // 32 and 64 both clamp to 14
  opts.stream_candidates = {2, 2, 1};
  opts.dry_run = true;
  opts.kernel_cost = hint;
  const TuneResult r =
      autotune(g, spec, linear_kernel(hint.flops_per_iter, hint.bytes_per_iter), opts);
  // Normalized candidates: chunks {4, 2, 14} x streams {2, 1}.
  ASSERT_EQ(r.explored.size(), 6u);
  EXPECT_EQ(r.explored[0].chunk_size, 4);
  EXPECT_EQ(r.explored[0].num_streams, 2);
  EXPECT_EQ(r.explored[1].num_streams, 1);
  EXPECT_EQ(r.explored[2].chunk_size, 2);
  EXPECT_EQ(r.explored[4].chunk_size, 14);
}

TEST(PlanCacheAutotune, AllOversizedChunksSkipTheProbe) {
  // When every chunk candidate clamps to the trip count the sweep has one
  // distinct chunk, so the model prefilter has nothing to rank and the
  // one-chunk probe execution must be skipped: the measured sweep performs
  // exactly the same device allocations as a prefilter-free sweep.
  KernelCostHint hint{64.0 * 8.0, 64.0 * 24.0};
  auto run = [&](bool prefilter) {
    gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
    g.hazards().set_enabled(false);
    const PipelineSpec spec = stencil_spec(g, 16, 64);  // trip count 14
    TuneOptions opts;
    opts.chunk_candidates = {32, 64, 128};  // all clamp to 14
    opts.stream_candidates = {1, 2};
    opts.model_prefilter = prefilter;
    const TuneResult r =
        autotune(g, spec, linear_kernel(hint.flops_per_iter, hint.bytes_per_iter), opts);
    EXPECT_EQ(r.explored.size(), 2u);
    EXPECT_EQ(r.chunk_size, 14);
    return g.device_mem_stats().total_allocations;
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(PlanCacheAutotune, MeasuredSweepWithPrefilterIgnoresTuneJobs) {
  // The measured path shares the device's virtual clock and always runs
  // serially; tune_jobs must not change its result.
  KernelCostHint hint{256.0 * 8.0, 256.0 * 24.0};
  auto run = [&](int jobs) {
    gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
    g.hazards().set_enabled(false);
    const PipelineSpec spec = stencil_spec(g, 32, 256);
    TuneOptions opts;
    opts.chunk_candidates = {1, 2, 4, 8};
    opts.stream_candidates = {1, 2, 4};
    opts.model_prefilter = true;
    opts.tune_jobs = jobs;
    return autotune(g, spec, linear_kernel(hint.flops_per_iter, hint.bytes_per_iter),
                    opts);
  };
  expect_identical(run(1), run(6));
}

TEST(PlanCache, FingerprintIsLocaleIndependent) {
  // The device-profile prefix embeds doubles (clock rates, bandwidths) as
  // hexfloats. printf-family "%a" renders them with LC_NUMERIC's decimal
  // point, so a process running under a comma-decimal locale would compute
  // different keys than the gpupipe_compile process that wrote a bundle or
  // disk cache — every cross-process lookup would silently miss. The
  // encoder must therefore be locale-independent (std::to_chars).
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  g.hazards().set_enabled(false);
  const PipelineSpec spec = stencil_spec(g, 16, 64);
  const std::string c_locale_key = PlanCache::fingerprint(g, spec, 4, 2);
  EXPECT_NE(c_locale_key.find('.'), std::string::npos);  // hexfloat mantissas

  const std::string saved = std::setlocale(LC_NUMERIC, nullptr);
  bool switched = false;
  for (const char* name : {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8", "fr_FR.utf8",
                           "de_DE", "fr_FR", "C.UTF-8@comma"})
    if (std::setlocale(LC_NUMERIC, name) != nullptr &&
        *std::localeconv()->decimal_point == ',') {
      switched = true;
      break;
    }
  if (!switched) {
    std::setlocale(LC_NUMERIC, saved.c_str());
    GTEST_SKIP() << "no comma-decimal locale installed";
  }
  const std::string comma_locale_key = PlanCache::fingerprint(g, spec, 4, 2);
  std::setlocale(LC_NUMERIC, saved.c_str());
  EXPECT_EQ(comma_locale_key, c_locale_key);
  EXPECT_EQ(comma_locale_key.find(','), std::string::npos);
}

}  // namespace
}  // namespace gpupipe::core
