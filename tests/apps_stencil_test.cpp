// Correctness tests for the stencil application: all three versions must
// produce the host reference bit-for-bit, across chunk/stream sweeps.
#include <gtest/gtest.h>

#include "apps/stencil.hpp"
#include "gpu/device_profile.hpp"

namespace gpupipe::apps {
namespace {

StencilConfig small_cfg() {
  StencilConfig cfg;
  cfg.nx = 10;
  cfg.ny = 9;
  cfg.nz = 12;
  cfg.sweeps = 3;
  cfg.chunk_size = 2;
  cfg.num_streams = 2;
  return cfg;
}

TEST(StencilApp, NaiveMatchesReference) {
  gpu::Gpu g(gpu::nvidia_k40m());
  std::vector<double> out;
  stencil_naive(g, small_cfg(), &out);
  EXPECT_EQ(out, stencil_reference(small_cfg()));
}

TEST(StencilApp, PipelinedMatchesReference) {
  gpu::Gpu g(gpu::nvidia_k40m());
  std::vector<double> out;
  stencil_pipelined(g, small_cfg(), &out);
  EXPECT_EQ(out, stencil_reference(small_cfg()));
}

TEST(StencilApp, PipelinedBufferMatchesReference) {
  gpu::Gpu g(gpu::nvidia_k40m());
  std::vector<double> out;
  stencil_pipelined_buffer(g, small_cfg(), &out);
  EXPECT_EQ(out, stencil_reference(small_cfg()));
}

TEST(StencilApp, AllVersionsAgreeOnChecksum) {
  gpu::Gpu g1(gpu::nvidia_k40m()), g2(gpu::nvidia_k40m()), g3(gpu::nvidia_k40m());
  const auto cfg = small_cfg();
  const auto naive = stencil_naive(g1, cfg);
  const auto piped = stencil_pipelined(g2, cfg);
  const auto buffered = stencil_pipelined_buffer(g3, cfg);
  EXPECT_NE(naive.checksum, 0u);
  EXPECT_EQ(naive.checksum, piped.checksum);
  EXPECT_EQ(naive.checksum, buffered.checksum);
}

class StencilSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(StencilSweep, BufferVersionCorrectForAllChunkStreamCombos) {
  auto cfg = small_cfg();
  cfg.chunk_size = std::get<0>(GetParam());
  cfg.num_streams = std::get<1>(GetParam());
  gpu::Gpu g(gpu::nvidia_k40m());
  std::vector<double> out;
  stencil_pipelined_buffer(g, cfg, &out);
  EXPECT_EQ(out, stencil_reference(cfg));
}

INSTANTIATE_TEST_SUITE_P(ChunkStream, StencilSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 5, 10),
                                            ::testing::Values(1, 2, 4)));

TEST(StencilApp, BufferVersionUsesFarLessDeviceMemory) {
  StencilConfig cfg = small_cfg();
  cfg.nz = 64;
  gpu::Gpu g1(gpu::nvidia_k40m()), g2(gpu::nvidia_k40m());
  const auto piped = stencil_pipelined(g1, cfg);
  const auto buffered = stencil_pipelined_buffer(g2, cfg);
  EXPECT_LT(buffered.peak_device_mem, piped.peak_device_mem / 4);
}

TEST(StencilApp, PipelinedIsFasterThanNaive) {
  // Planes must be large enough that per-chunk transfers still run near
  // peak bandwidth; tiny planes lose to pipelining overhead (the same
  // effect the paper reports on the AMD GPU, Fig. 8).
  StencilConfig cfg;
  cfg.nx = 256;
  cfg.ny = 256;
  cfg.nz = 32;
  cfg.sweeps = 1;
  cfg.chunk_size = 4;
  cfg.num_streams = 2;
  gpu::Gpu g1(gpu::nvidia_k40m()), g2(gpu::nvidia_k40m());
  g1.hazards().set_enabled(false);
  g2.hazards().set_enabled(false);
  const auto naive = stencil_naive(g1, cfg);
  const auto buffered = stencil_pipelined_buffer(g2, cfg);
  EXPECT_LT(buffered.seconds, naive.seconds);
}

TEST(StencilApp, HazardTrackerStaysEnabledForBufferVersion) {
  gpu::Gpu g(gpu::nvidia_k40m());
  ASSERT_TRUE(g.hazards().enabled());
  stencil_pipelined_buffer(g, small_cfg());
  EXPECT_TRUE(g.hazards().enabled());  // and no HazardError was thrown
}

TEST(StencilApp, ModeledModeRunsWithoutBackingStore) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  StencilConfig cfg;
  cfg.nx = 512;
  cfg.ny = 512;
  cfg.nz = 256;  // 512 MB per array: modeled, never allocated
  cfg.sweeps = 1;
  const auto m = stencil_pipelined_buffer(g, cfg);
  EXPECT_GT(m.seconds, 0.0);
  EXPECT_EQ(m.checksum, 0u);
  EXPECT_LT(m.peak_device_mem, 64 * MiB);
}

TEST(StencilApp, RejectsDegenerateGrid) {
  gpu::Gpu g(gpu::nvidia_k40m());
  StencilConfig cfg = small_cfg();
  cfg.nz = 2;
  EXPECT_THROW(stencil_naive(g, cfg), Error);
}

}  // namespace
}  // namespace gpupipe::apps
