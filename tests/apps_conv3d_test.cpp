// Correctness tests for the 3-D convolution application.
#include <gtest/gtest.h>

#include "apps/conv3d.hpp"
#include "gpu/device_profile.hpp"

namespace gpupipe::apps {
namespace {

Conv3dConfig small_cfg() {
  Conv3dConfig cfg;
  cfg.ni = 11;
  cfg.nj = 9;
  cfg.nk = 8;
  cfg.passes = 1;
  cfg.chunk_size = 2;
  cfg.num_streams = 2;
  return cfg;
}

TEST(Conv3dApp, NaiveMatchesReference) {
  gpu::Gpu g(gpu::nvidia_k40m());
  std::vector<double> out;
  conv3d_naive(g, small_cfg(), &out);
  EXPECT_EQ(out, conv3d_reference(small_cfg()));
}

TEST(Conv3dApp, PipelinedMatchesReference) {
  gpu::Gpu g(gpu::nvidia_k40m());
  std::vector<double> out;
  conv3d_pipelined(g, small_cfg(), &out);
  EXPECT_EQ(out, conv3d_reference(small_cfg()));
}

TEST(Conv3dApp, PipelinedBufferMatchesReference) {
  gpu::Gpu g(gpu::nvidia_k40m());
  std::vector<double> out;
  conv3d_pipelined_buffer(g, small_cfg(), &out);
  EXPECT_EQ(out, conv3d_reference(small_cfg()));
}

class Conv3dSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Conv3dSweep, BufferVersionCorrectForAllChunkStreamCombos) {
  auto cfg = small_cfg();
  cfg.chunk_size = std::get<0>(GetParam());
  cfg.num_streams = std::get<1>(GetParam());
  gpu::Gpu g(gpu::nvidia_k40m());
  std::vector<double> out;
  conv3d_pipelined_buffer(g, cfg, &out);
  EXPECT_EQ(out, conv3d_reference(cfg));
}

INSTANTIATE_TEST_SUITE_P(ChunkStream, Conv3dSweep,
                         ::testing::Combine(::testing::Values(1, 2, 4, 9),
                                            ::testing::Values(1, 2, 3)));

TEST(Conv3dApp, WorksOnAmdProfileToo) {
  gpu::Gpu g(gpu::amd_hd7970());
  std::vector<double> out;
  conv3d_pipelined_buffer(g, small_cfg(), &out);
  EXPECT_EQ(out, conv3d_reference(small_cfg()));
}

TEST(Conv3dApp, MultiPassReusesBuffers) {
  auto cfg = small_cfg();
  cfg.passes = 3;
  gpu::Gpu g(gpu::nvidia_k40m());
  std::vector<double> out;
  const auto m = conv3d_pipelined_buffer(g, cfg, &out);
  EXPECT_EQ(out, conv3d_reference(cfg));  // idempotent per pass
  EXPECT_GT(m.h2d_time, 0.0);
}

TEST(Conv3dApp, BufferVersionUsesFarLessDeviceMemory) {
  Conv3dConfig cfg = small_cfg();
  cfg.ni = 96;
  gpu::Gpu g1(gpu::nvidia_k40m()), g2(gpu::nvidia_k40m());
  const auto naive = conv3d_naive(g1, cfg);
  const auto buffered = conv3d_pipelined_buffer(g2, cfg);
  EXPECT_LT(buffered.peak_device_mem, naive.peak_device_mem / 4);
}

TEST(Conv3dApp, NaivePhasesAreSerial) {
  // In the naive version nothing overlaps: the region time must equal (or
  // exceed) the sum of transfer and kernel busy times.
  gpu::Gpu g(gpu::nvidia_k40m());
  const auto m = conv3d_naive(g, small_cfg());
  EXPECT_GE(m.seconds, m.h2d_time + m.d2h_time + m.kernel_time);
}

TEST(Conv3dApp, BufferVersionOverlapsPhases) {
  Conv3dConfig cfg;
  cfg.ni = 128;
  cfg.nj = 64;
  cfg.nk = 64;
  cfg.chunk_size = 4;
  cfg.num_streams = 2;
  gpu::Gpu g(gpu::nvidia_k40m());
  g.hazards().set_enabled(false);
  const auto m = conv3d_pipelined_buffer(g, cfg);
  // Overlap: total busy time strictly exceeds wall time.
  EXPECT_LT(m.seconds, m.h2d_time + m.d2h_time + m.kernel_time);
}

}  // namespace
}  // namespace gpupipe::apps
