// Unit tests for directive binding: resolving array names, identifying the
// split dimension, affine extraction, and the validation diagnostics.
#include <gtest/gtest.h>

#include <vector>

#include "dsl/bind.hpp"

namespace gpupipe::dsl {
namespace {

std::vector<double> storage(std::size_t n) { return std::vector<double>(n, 0.0); }

TEST(Bind, BindsTheFig2Directive) {
  auto a0 = storage(8 * 4 * 6);
  auto anext = storage(8 * 4 * 6);
  const core::PipelineSpec spec = compile(
      "pipeline(static[1,3]) "
      "pipeline_map(to: A0[k-1:3][0:ny][0:nx]) "
      "pipeline_map(from: Anext[k:1][0:ny][0:nx])",
      "k", 1, 7,
      {{"A0", HostArray::of(a0.data(), {8, 4, 6})},
       {"Anext", HostArray::of(anext.data(), {8, 4, 6})}},
      {{"ny", 4}, {"nx", 6}});

  EXPECT_EQ(spec.chunk_size, 1);
  EXPECT_EQ(spec.num_streams, 3);
  EXPECT_EQ(spec.loop_begin, 1);
  EXPECT_EQ(spec.loop_end, 7);
  ASSERT_EQ(spec.arrays.size(), 2u);
  const auto& in = spec.arrays[0];
  EXPECT_EQ(in.split.dim, 0);
  EXPECT_EQ(in.split.start, (core::Affine{1, -1}));
  EXPECT_EQ(in.split.window, 3);
  EXPECT_EQ(in.dims, (std::vector<std::int64_t>{8, 4, 6}));
  const auto& out = spec.arrays[1];
  EXPECT_EQ(out.split.start, (core::Affine{1, 0}));
  EXPECT_EQ(out.split.window, 1);
}

TEST(Bind, ExtractsScaledAffine) {
  auto a = storage(64 * 2);
  const core::PipelineSpec spec =
      compile("pipeline_map(to: A[2*k+3:2][0:m])", "k", 0, 8,
              {{"A", HostArray::of(a.data(), {64, 2})}}, {{"m", 2}});
  EXPECT_EQ(spec.arrays[0].split.start, (core::Affine{2, 3}));
}

TEST(Bind, SecondDimensionSplitMakesBlock2d) {
  auto a = storage(16 * 32);
  const core::PipelineSpec spec =
      compile("pipeline_map(to: A[0:n][k:1])", "k", 0, 32,
              {{"A", HostArray::of(a.data(), {16, 32})}}, {{"n", 16}});
  EXPECT_EQ(spec.arrays[0].split.dim, 1);
}

TEST(Bind, UnregisteredArrayThrowsWithName) {
  try {
    compile("pipeline_map(to: Missing[k:1][0:4])", "k", 0, 4, {}, {});
    FAIL();
  } catch (const BindError& e) {
    EXPECT_NE(std::string(e.what()).find("Missing"), std::string::npos);
  }
}

TEST(Bind, DimensionCountMismatchThrows) {
  auto a = storage(8 * 8);
  EXPECT_THROW(compile("pipeline_map(to: A[k:1])", "k", 0, 8,
                       {{"A", HostArray::of(a.data(), {8, 8})}}, {}),
               BindError);
}

TEST(Bind, ExtentMismatchThrows) {
  auto a = storage(8 * 8);
  EXPECT_THROW(compile("pipeline_map(to: A[k:1][0:9])", "k", 0, 8,
                       {{"A", HostArray::of(a.data(), {8, 8})}}, {}),
               BindError);
}

TEST(Bind, NonZeroBaseOfPlainDimensionThrows) {
  auto a = storage(8 * 8);
  EXPECT_THROW(compile("pipeline_map(to: A[k:1][2:8])", "k", 0, 8,
                       {{"A", HostArray::of(a.data(), {8, 8})}}, {}),
               BindError);
}

TEST(Bind, NoSplitDimensionThrows) {
  auto a = storage(8 * 8);
  EXPECT_THROW(compile("pipeline_map(to: A[0:8][0:8])", "k", 0, 8,
                       {{"A", HostArray::of(a.data(), {8, 8})}}, {}),
               BindError);
}

TEST(Bind, TwoSplitDimensionsThrow) {
  auto a = storage(8 * 8);
  EXPECT_THROW(compile("pipeline_map(to: A[k:1][k:1])", "k", 0, 8,
                       {{"A", HostArray::of(a.data(), {8, 8})}}, {}),
               BindError);
}

TEST(Bind, NonAffineSplitExpressionThrows) {
  auto a = storage(64 * 2);
  EXPECT_THROW(compile("pipeline_map(to: A[k*k:1][0:2])", "k", 0, 8,
                       {{"A", HostArray::of(a.data(), {64, 2})}}, {}),
               BindError);
}

TEST(Bind, WindowDependingOnLoopVarThrows) {
  auto a = storage(64 * 2);
  EXPECT_THROW(compile("pipeline_map(to: A[k:k][0:2])", "k", 0, 8,
                       {{"A", HostArray::of(a.data(), {64, 2})}}, {}),
               BindError);
}

TEST(Bind, EnvironmentFlowsIntoScheduleParameters) {
  auto a = storage(64 * 2);
  const core::PipelineSpec spec =
      compile("pipeline(static[C,S]) pipeline_map(to: A[k:1][0:m])", "k", 0, 64,
              {{"A", HostArray::of(a.data(), {64, 2})}}, {{"C", 8}, {"S", 4}, {"m", 2}});
  EXPECT_EQ(spec.chunk_size, 8);
  EXPECT_EQ(spec.num_streams, 4);
}

TEST(Bind, OutputWindowOverlapIsRejected) {
  // An output declared as [k-1:3] would be written by several chunks.
  auto a = storage(64 * 2);
  EXPECT_THROW(compile("pipeline_map(from: A[k-1:3][0:2])", "k", 1, 8,
                       {{"A", HostArray::of(a.data(), {64, 2})}}, {}),
               Error);
}

TEST(Bind, DecreasingSplitIsRejected) {
  auto a = storage(64 * 2);
  EXPECT_THROW(compile("pipeline_map(to: A[8-k:1][0:2])", "k", 0, 8,
                       {{"A", HostArray::of(a.data(), {64, 2})}}, {}),
               Error);
}

}  // namespace
}  // namespace gpupipe::dsl
