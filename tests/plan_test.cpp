// Tests for the ExecutionPlan IR: executed timelines respect the plan's
// dependency edges across chunk/stream/window sweeps, static validation
// rejects tampered plans, and the introspection dumps are well-formed.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <tuple>
#include <vector>

#include "core/pipeline.hpp"
#include "core/plan.hpp"
#include "gpu/device_profile.hpp"
#include "gpu/hazard.hpp"

namespace gpupipe::core {
namespace {

bool has_device_work(const PlanNode& n) {
  return n.op == PlanOp::H2D || n.op == PlanOp::Kernel || n.op == PlanOp::D2H;
}

// Start/end time of every device-work node, recovered by zipping the plan's
// per-stream node order with the per-lane trace spans (streams are FIFO, so
// span start order == issue order).
struct NodeTimes {
  std::vector<SimTime> start, end;
};

NodeTimes recover_node_times(const ExecutionPlan& plan, const sim::Trace& trace,
                             const std::string& lane_prefix) {
  // Per-lane spans of real device work, in execution order.
  std::map<std::string, std::vector<const sim::Span*>> by_lane;
  for (const auto& s : trace.spans()) {
    if (s.kind == sim::SpanKind::H2D || s.kind == sim::SpanKind::D2H ||
        s.kind == sim::SpanKind::Kernel)
      by_lane[trace.lane(s)].push_back(&s);
  }
  for (auto& [lane, spans] : by_lane)
    std::sort(spans.begin(), spans.end(),
              [](const sim::Span* a, const sim::Span* b) { return a->start < b->start; });

  NodeTimes t;
  t.start.assign(plan.nodes.size(), 0.0);
  t.end.assign(plan.nodes.size(), 0.0);
  std::map<std::string, std::size_t> cursor;
  for (const auto& n : plan.nodes) {
    if (!has_device_work(n)) continue;
    const std::string lane = lane_prefix + std::to_string(n.stream);
    const auto& spans = by_lane[lane];
    const std::size_t count = n.op == PlanOp::Kernel ? 1 : n.segments.size();
    std::size_t& at = cursor[lane];
    EXPECT_LE(at + count, spans.size()) << "missing spans for node " << n.label;
    if (at + count > spans.size()) break;
    t.start[static_cast<std::size_t>(n.id)] = spans[at]->start;
    t.end[static_cast<std::size_t>(n.id)] = spans[at + count - 1]->end;
    at += count;
  }
  // Every span must be accounted for by exactly one node.
  for (const auto& [lane, spans] : by_lane)
    EXPECT_EQ(cursor[lane], spans.size()) << "unclaimed spans in " << lane;
  return t;
}

// Resolves a dependency to the device-work ancestors it stands for,
// following through SlotReuse/Barrier nodes (which have no spans).
void device_ancestors(const ExecutionPlan& plan, int id, std::vector<int>& out) {
  const PlanNode& n = plan.nodes[static_cast<std::size_t>(id)];
  if (has_device_work(n)) {
    out.push_back(id);
    return;
  }
  for (int d : n.deps) device_ancestors(plan, d, out);
}

PipelineSpec sweep_spec(std::byte* in, std::byte* out, std::int64_t n, std::int64_t m,
                        std::int64_t window) {
  PipelineSpec spec;
  if (window == 1) {
    spec.loop_begin = 0;
    spec.loop_end = n;
    spec.arrays = {ArraySpec{"in", MapType::To, in, sizeof(double), {n, m},
                             SplitSpec{0, Affine{1, 0}, 1}},
                   ArraySpec{"out", MapType::From, out, sizeof(double), {n, m},
                             SplitSpec{0, Affine{1, 0}, 1}}};
  } else {
    // Stencil-style halo: iteration k reads in[k-1 .. k+window-2].
    spec.loop_begin = 1;
    spec.loop_end = n - 1;
    spec.arrays = {ArraySpec{"in", MapType::To, in, sizeof(double), {n, m},
                             SplitSpec{0, Affine{1, -1}, window}},
                   ArraySpec{"out", MapType::From, out, sizeof(double), {n, m},
                             SplitSpec{0, Affine{1, 0}, 1}}};
  }
  return spec;
}

KernelFactory plain_kernel(std::int64_t m) {
  return [m](const ChunkContext& ctx) {
    gpu::KernelDesc k;
    k.flops = static_cast<double>(ctx.iterations() * m);
    k.bytes = static_cast<Bytes>(ctx.iterations() * m) * 8;
    return k;
  };
}

class PlanOrdering
    : public ::testing::TestWithParam<std::tuple<std::int64_t, int, std::int64_t>> {};

// The property the whole IR hangs on: replaying the plan on the simulated
// device never starts a node before any of its dependencies finished.
TEST_P(PlanOrdering, ExecutedEventOrderingIsConsistentWithPlanEdges) {
  const auto [chunk, streams, window] = GetParam();
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  const std::int64_t n = 24, m = 64;
  std::byte* in = g.host_alloc(static_cast<Bytes>(n * m) * sizeof(double));
  std::byte* out = g.host_alloc(static_cast<Bytes>(n * m) * sizeof(double));
  PipelineSpec spec = sweep_spec(in, out, n, m, window);
  spec.chunk_size = chunk;
  spec.num_streams = streams;

  Pipeline p(g, spec);
  g.trace().clear();
  p.run(plain_kernel(m));

  const ExecutionPlan& plan = p.execution_plan();
  const NodeTimes t = recover_node_times(plan, g.trace(), "pipe");
  std::size_t checked = 0;
  for (const auto& node : plan.nodes) {
    if (!has_device_work(node)) continue;
    std::vector<int> ancestors;
    for (int d : node.deps) device_ancestors(plan, d, ancestors);
    for (int a : ancestors) {
      EXPECT_LE(t.end[static_cast<std::size_t>(a)],
                t.start[static_cast<std::size_t>(node.id)])
          << plan.nodes[static_cast<std::size_t>(a)].label << " -> " << node.label;
      ++checked;
    }
  }
  if (plan.nodes.size() > 2) {
    EXPECT_GT(checked, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(ChunkStreamWindowSweep, PlanOrdering,
                         ::testing::Combine(::testing::Values(std::int64_t{1}, std::int64_t{2},
                                                              std::int64_t{3}, std::int64_t{5}),
                                            ::testing::Values(1, 2, 4),
                                            ::testing::Values(std::int64_t{1},
                                                              std::int64_t{3})));

TEST(PlanValidate, AcceptsTheBuiltPlan) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  const std::int64_t n = 16, m = 8;
  std::byte* in = g.host_alloc(static_cast<Bytes>(n * m) * sizeof(double));
  std::byte* out = g.host_alloc(static_cast<Bytes>(n * m) * sizeof(double));
  PipelineSpec spec = sweep_spec(in, out, n, m, 1);
  spec.chunk_size = 2;
  spec.num_streams = 2;
  Pipeline p(g, spec);
  EXPECT_NO_THROW(p.execution_plan().validate());
}

TEST(PlanValidate, RejectsAPlanWithADeletedSlotReuseEdge) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  const std::int64_t n = 16, m = 8;
  std::byte* in = g.host_alloc(static_cast<Bytes>(n * m) * sizeof(double));
  std::byte* out = g.host_alloc(static_cast<Bytes>(n * m) * sizeof(double));
  // Halo'd input: slot reuse must wait for the *other* stream's reader, so
  // deleting the edge leaves a genuinely unordered overwrite.
  PipelineSpec spec = sweep_spec(in, out, n, m, 3);
  spec.chunk_size = 2;
  spec.num_streams = 2;
  Pipeline p(g, spec);

  ExecutionPlan tampered = p.execution_plan();
  bool deleted = false;
  for (auto& node : tampered.nodes) {
    if (node.op != PlanOp::SlotReuse) continue;
    const bool cross_stream =
        std::any_of(node.deps.begin(), node.deps.end(), [&](int d) {
          return tampered.nodes[static_cast<std::size_t>(d)].stream != node.stream;
        });
    if (cross_stream) {
      node.deps.clear();
      deleted = true;
      break;
    }
  }
  ASSERT_TRUE(deleted) << "expected a cross-stream guarded slot reuse";
  EXPECT_THROW(tampered.validate(), gpu::HazardError);
}

TEST(PlanIntrospection, DotAndChromeTraceDumpsAreWellFormed) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  const std::int64_t n = 12, m = 16;
  std::byte* in = g.host_alloc(static_cast<Bytes>(n * m) * sizeof(double));
  std::byte* out = g.host_alloc(static_cast<Bytes>(n * m) * sizeof(double));
  PipelineSpec spec = sweep_spec(in, out, n, m, 1);
  spec.chunk_size = 2;
  spec.num_streams = 2;
  Pipeline p(g, spec);
  const ExecutionPlan& plan = p.execution_plan();

  std::ostringstream dot;
  plan.to_dot(dot);
  EXPECT_NE(dot.str().find("digraph"), std::string::npos);
  EXPECT_NE(dot.str().find("h2d in"), std::string::npos);
  EXPECT_NE(dot.str().find("reuse"), std::string::npos);

  const DryRunResult dry = dry_run(plan, g.profile());
  EXPECT_GT(dry.makespan, 0.0);
  std::ostringstream json;
  dry.trace.dump_chrome_json(json);
  EXPECT_NE(json.str().find("traceEvents"), std::string::npos);
  EXPECT_NE(json.str().find("h2d"), std::string::npos);
}

// The planned (dry-run) makespan and the executed virtual-clock region time
// come from the same op graph; they must agree when the dry run is seeded
// with the kernel's true per-iteration cost.
TEST(PlanDryRun, TracksExecutedRegionTime) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  g.hazards().set_enabled(false);
  const std::int64_t n = 32, m = 4096;
  std::byte* in = g.host_alloc(static_cast<Bytes>(n * m) * sizeof(double));
  std::byte* out = g.host_alloc(static_cast<Bytes>(n * m) * sizeof(double));
  PipelineSpec spec = sweep_spec(in, out, n, m, 1);
  spec.chunk_size = 4;
  spec.num_streams = 2;

  Pipeline p(g, spec);
  const SimTime t0 = g.host_now();
  p.run(plain_kernel(m));
  const SimTime executed = g.host_now() - t0;

  DryRunCost cost;
  cost.flops_per_iter = static_cast<double>(m);
  cost.bytes_per_iter = static_cast<double>(m) * 8.0;
  cost.live_streams = spec.num_streams;
  const SimTime planned = dry_run(p.execution_plan(), g.profile(), cost).makespan;
  EXPECT_GT(planned, 0.8 * executed);
  EXPECT_LT(planned, 1.25 * executed);
}

}  // namespace
}  // namespace gpupipe::core
