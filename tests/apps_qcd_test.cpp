// Correctness tests for the Lattice QCD application.
#include <gtest/gtest.h>

#include "apps/qcd.hpp"
#include "gpu/device_profile.hpp"

namespace gpupipe::apps {
namespace {

QcdConfig small_cfg() {
  QcdConfig cfg;
  cfg.n = 6;
  cfg.passes = 1;
  cfg.chunk_size = 1;
  cfg.num_streams = 2;
  return cfg;
}

TEST(QcdApp, NaiveMatchesReference) {
  gpu::Gpu g(gpu::nvidia_k40m());
  std::vector<double> out;
  qcd_naive(g, small_cfg(), &out);
  EXPECT_EQ(out, qcd_reference(small_cfg()));
}

TEST(QcdApp, PipelinedMatchesReference) {
  gpu::Gpu g(gpu::nvidia_k40m());
  std::vector<double> out;
  qcd_pipelined(g, small_cfg(), &out);
  EXPECT_EQ(out, qcd_reference(small_cfg()));
}

TEST(QcdApp, PipelinedBufferMatchesReference) {
  gpu::Gpu g(gpu::nvidia_k40m());
  std::vector<double> out;
  qcd_pipelined_buffer(g, small_cfg(), &out);
  EXPECT_EQ(out, qcd_reference(small_cfg()));
}

class QcdSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(QcdSweep, BufferVersionCorrectForAllChunkStreamCombos) {
  auto cfg = small_cfg();
  cfg.chunk_size = std::get<0>(GetParam());
  cfg.num_streams = std::get<1>(GetParam());
  gpu::Gpu g(gpu::nvidia_k40m());
  std::vector<double> out;
  qcd_pipelined_buffer(g, cfg, &out);
  EXPECT_EQ(out, qcd_reference(cfg));
}

INSTANTIATE_TEST_SUITE_P(ChunkStream, QcdSweep,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 2, 3)));

TEST(QcdApp, ReferenceIsNotTrivial) {
  const auto ref = qcd_reference(small_cfg());
  double sum = 0.0;
  for (double v : ref) sum += std::abs(v);
  EXPECT_GT(sum, 1.0);  // the operator actually produced signal
}

TEST(QcdApp, MemorySavingsGrowWithLatticeSize) {
  // The paper: splitting reduces O(n^4) to O(C n^3), so savings grow with n.
  auto ratio_at = [](std::int64_t n) {
    QcdConfig cfg;
    cfg.n = n;
    gpu::Gpu g1(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
    gpu::Gpu g2(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
    const auto full = qcd_pipelined(g1, cfg);
    const auto buf = qcd_pipelined_buffer(g2, cfg);
    return static_cast<double>(buf.peak_device_mem) /
           static_cast<double>(full.peak_device_mem);
  };
  const double r12 = ratio_at(12);
  const double r24 = ratio_at(24);
  EXPECT_LT(r24, r12);
  EXPECT_LT(r24, 0.45);
}

TEST(QcdApp, TransferShareIsRoughlyHalfForNaive) {
  // Fig. 3's premise: the naive QCD offload spends ~50% in transfers.
  QcdConfig cfg;
  cfg.n = 24;
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  const auto m = qcd_naive(g, cfg);
  const double transfer_share = (m.h2d_time + m.d2h_time) / m.seconds;
  EXPECT_GT(transfer_share, 0.35);
  EXPECT_LT(transfer_share, 0.65);
}

TEST(QcdApp, PipelinedBufferIsFasterThanNaive) {
  QcdConfig cfg;
  cfg.n = 24;
  cfg.chunk_size = 1;
  cfg.num_streams = 2;
  gpu::Gpu g1(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  gpu::Gpu g2(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  const auto naive = qcd_naive(g1, cfg);
  const auto buf = qcd_pipelined_buffer(g2, cfg);
  EXPECT_GT(naive.seconds / buf.seconds, 1.2);
}

}  // namespace
}  // namespace gpupipe::apps
