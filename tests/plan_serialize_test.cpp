// Plan-artifact serialization and the on-disk plan-cache tier: byte-exact
// round trips on the paper's Fig. 4 / Fig. 7 pipeline shapes, and corruption
// tolerance — truncation, bit flips, zero-length files, version skew, and
// swapped entries must all degrade to a silent recompute (counted in
// plan_cache.disk.corrupt), never a crash and never a wrong result.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "common/checksum.hpp"
#include "core/plan_cache.hpp"
#include "core/plan_serialize.hpp"
#include "gpu/device_profile.hpp"

namespace gpupipe::core {
namespace {

namespace fs = std::filesystem;

// Fig. 7: one halo'd input grid feeding one output grid (stencil).
PipelineSpec fig7_spec(gpu::Gpu& g, std::int64_t nz, std::int64_t plane) {
  std::byte* in = g.host_alloc(static_cast<Bytes>(nz * plane) * 8, true);
  std::byte* out = g.host_alloc(static_cast<Bytes>(nz * plane) * 8, true);
  PipelineSpec spec;
  spec.loop_begin = 1;
  spec.loop_end = nz - 1;
  spec.arrays = {
      ArraySpec{"in", MapType::To, in, 8, {nz, plane}, SplitSpec{0, Affine{1, -1}, 3}},
      ArraySpec{"out", MapType::From, out, 8, {nz, plane}, SplitSpec{0, Affine{1, 0}, 1}},
  };
  return spec;
}

// Fig. 4: a haloless streaming update of one resident array (tofrom).
PipelineSpec fig4_spec(gpu::Gpu& g, std::int64_t rows, std::int64_t cols) {
  std::byte* data = g.host_alloc(static_cast<Bytes>(rows * cols) * 8, true);
  PipelineSpec spec;
  spec.loop_begin = 0;
  spec.loop_end = rows;
  spec.arrays = {
      ArraySpec{"data", MapType::ToFrom, data, 8, {rows, cols},
                SplitSpec{0, Affine{1, 0}, 1}},
  };
  return spec;
}

/// A per-test scratch directory under the system temp dir, wiped on entry.
fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("gpupipe_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<fs::path> plan_files(const fs::path& dir) {
  std::vector<fs::path> out;
  for (const auto& e : fs::directory_iterator(dir))
    if (e.path().extension() == ".plan") out.push_back(e.path());
  return out;
}

std::string slurp(const fs::path& p) {
  std::ifstream f(p, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(f), {});
}

void spill(const fs::path& p, const std::string& bytes) {
  std::ofstream f(p, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Patches the u32 at `offset` and rewrites the trailing checksum so only
/// the patched field — not the checksum — differs from a valid record.
std::string patch_u32(std::string bytes, std::size_t offset, std::uint32_t value) {
  for (int i = 0; i < 4; ++i)
    bytes[offset + static_cast<std::size_t>(i)] =
        static_cast<char>((value >> (8 * i)) & 0xffu);
  const std::uint64_t sum =
      fnv1a(std::span<const char>(bytes.data(), bytes.size() - 8));
  for (int i = 0; i < 8; ++i)
    bytes[bytes.size() - 8 + static_cast<std::size_t>(i)] =
        static_cast<char>((sum >> (8 * i)) & 0xffu);
  return bytes;
}

PlanArtifact make_plan_artifact(gpu::Gpu& g, PlanCache& cache,
                                const PipelineSpec& spec) {
  PlanArtifact a;
  a.kind = ArtifactKind::Plan;
  a.key = "plan|" + PlanCache::fingerprint(g, spec, spec.chunk_size, spec.num_streams);
  const PlanCache::Compiled built = cache.compile(g, spec);
  a.plan = *built.plan;
  a.report = built.report;
  return a;
}

TEST(PlanSerialize, PlanArtifactRoundTripIsByteExact) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  g.hazards().set_enabled(false);
  PlanCache cache(8);

  PipelineSpec spec = fig7_spec(g, 32, 256);
  spec.chunk_size = 4;
  spec.num_streams = 3;
  spec.opt_level = 2;
  const PlanArtifact a = make_plan_artifact(g, cache, spec);
  ASSERT_FALSE(a.plan.nodes.empty());

  const std::string bytes = serialize_artifact(a);
  PlanArtifact out;
  std::string error;
  ASSERT_TRUE(deserialize_artifact(bytes, out, &error)) << error;
  EXPECT_EQ(out.kind, ArtifactKind::Plan);
  EXPECT_EQ(out.key, a.key);
  EXPECT_EQ(out.plan.nodes.size(), a.plan.nodes.size());
  EXPECT_EQ(out.plan.arrays.size(), a.plan.arrays.size());
  EXPECT_EQ(out.plan.chunk_size, a.plan.chunk_size);
  EXPECT_EQ(out.plan.num_streams, a.plan.num_streams);
  EXPECT_EQ(out.report.nodes_after, a.report.nodes_after);
  EXPECT_NO_THROW(out.plan.validate());
  // Re-serializing the decoded artifact reproduces the input byte for byte:
  // nothing is lost, reordered, or re-encoded differently.
  EXPECT_EQ(serialize_artifact(out), bytes);
}

TEST(PlanSerialize, TuneAndScalarArtifactsRoundTrip) {
  TuneResult tune;
  tune.chunk_size = 48;
  tune.num_streams = 5;
  tune.best_time = 3.25e-3;
  tune.explored = {{16, 2, 4.5e-3, true}, {48, 5, 3.25e-3, true}, {64, 8, 0.0, false}};

  PlanArtifact t;
  t.kind = ArtifactKind::Tune;
  t.key = tune_artifact_key(gpu::nvidia_k40m(), "stencil/large");
  t.tune = tune;

  PlanArtifact fp;
  fp.kind = ArtifactKind::Footprint;
  fp.key = "fp|test";
  fp.footprint = 123456789;

  PlanArtifact est;
  est.kind = ArtifactKind::Estimate;
  est.key = "est|test";
  est.estimate = 7.5e-4;

  for (const PlanArtifact* a : {&t, &fp, &est}) {
    const std::string bytes = serialize_artifact(*a);
    PlanArtifact out;
    std::string error;
    ASSERT_TRUE(deserialize_artifact(bytes, out, &error)) << error;
    EXPECT_EQ(out.kind, a->kind);
    EXPECT_EQ(out.key, a->key);
    EXPECT_EQ(serialize_artifact(out), bytes);
  }
}

TEST(PlanSerialize, BundleFileRoundTripsAtomically) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  g.hazards().set_enabled(false);
  PlanCache cache(8);
  const fs::path dir = fresh_dir("plan_serialize_bundle");

  PipelineSpec s7 = fig7_spec(g, 24, 128);
  PipelineSpec s4 = fig4_spec(g, 64, 64);
  s4.chunk_size = 8;
  s4.num_streams = 2;
  PlanBundle bundle;
  bundle.artifacts.push_back(make_plan_artifact(g, cache, s7));
  bundle.artifacts.push_back(make_plan_artifact(g, cache, s4));
  PlanArtifact tune;
  tune.kind = ArtifactKind::Tune;
  tune.key = tune_artifact_key(g.profile(), "stream/small");
  tune.tune.chunk_size = 8;
  tune.tune.num_streams = 2;
  bundle.artifacts.push_back(tune);

  const fs::path path = dir / "mix.gpb";
  std::string error;
  ASSERT_TRUE(write_bundle_file(path.string(), bundle, &error)) << error;
  // Atomic write: no temp file left behind next to the destination.
  EXPECT_EQ(plan_files(dir).size(), 0u);
  ASSERT_EQ(std::distance(fs::directory_iterator(dir), fs::directory_iterator{}), 1);

  PlanBundle out;
  ASSERT_TRUE(read_bundle_file(path.string(), out, &error)) << error;
  ASSERT_EQ(out.artifacts.size(), bundle.artifacts.size());
  EXPECT_EQ(serialize_bundle(out), serialize_bundle(bundle));
  EXPECT_EQ(out.artifacts[2].tune.chunk_size, 8);

  // All-or-nothing: one flipped byte anywhere fails the whole bundle read.
  std::string bytes = slurp(path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  spill(path, bytes);
  EXPECT_FALSE(read_bundle_file(path.string(), out, &error));
  EXPECT_FALSE(error.empty());
  fs::remove_all(dir);
}

TEST(PlanSerialize, DeserializeRejectsEveryMutation) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  g.hazards().set_enabled(false);
  PlanCache cache(8);
  PipelineSpec spec = fig7_spec(g, 16, 64);
  spec.chunk_size = 2;
  spec.num_streams = 2;
  const std::string bytes = serialize_artifact(make_plan_artifact(g, cache, spec));

  PlanArtifact out;
  EXPECT_FALSE(deserialize_artifact({}, out));  // zero-length
  for (std::size_t len = 0; len < bytes.size(); len += 7)
    EXPECT_FALSE(deserialize_artifact(std::string_view(bytes.data(), len), out))
        << "truncation to " << len << " bytes must not parse";
  for (std::size_t i = 0; i < bytes.size(); i += 11) {
    std::string flipped = bytes;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x01);
    EXPECT_FALSE(deserialize_artifact(flipped, out))
        << "bit flip at byte " << i << " must not parse";
  }
  std::string error;
  // Version skew with a *valid* checksum is still rejected (offset 4 is the
  // format-version u32), as is a foreign magic (offset 0).
  EXPECT_FALSE(
      deserialize_artifact(patch_u32(bytes, 4, kPlanFormatVersion + 1), out, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;
  EXPECT_FALSE(deserialize_artifact(patch_u32(bytes, 0, 0xdeadbeefu), out, &error));
  // Unknown artifact kind (offset 8) with a valid checksum.
  EXPECT_FALSE(deserialize_artifact(patch_u32(bytes, 8, 99), out, &error));
  // The untouched original still parses — the harness above is not vacuous.
  EXPECT_TRUE(deserialize_artifact(bytes, out, &error)) << error;
}

TEST(PlanSerialize, DiskTierSurvivesCorruptEntries) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  g.hazards().set_enabled(false);
  const fs::path dir = fresh_dir("plan_serialize_disk");
  PlanCache cache(32);
  cache.set_disk_dir(dir.string());

  PipelineSpec spec = fig7_spec(g, 32, 128);
  spec.chunk_size = 4;
  spec.num_streams = 2;
  DryRunCost cost;
  cost.flops_per_iter = 100.0;
  cost.bytes_per_iter = 64.0;

  const Bytes fp = cache.footprint(g, spec, 4, 2);
  const SimTime est = cache.estimate(g, spec, cost);
  ASSERT_GT(cache.stats().disk_writes, 0u);
  const auto files = plan_files(dir);
  ASSERT_GE(files.size(), 3u);  // fp + plan + est at minimum

  // Warm disk, cold memory: every lookup is a memory miss served from disk.
  cache.clear();
  cache.reset_stats();
  EXPECT_EQ(cache.footprint(g, spec, 4, 2), fp);
  EXPECT_EQ(cache.estimate(g, spec, cost), est);
  EXPECT_EQ(cache.stats().disk_corrupt, 0u);
  EXPECT_GE(cache.stats().disk_hits, 2u);
  EXPECT_EQ(cache.stats().misses, cache.stats().disk_hits);

  // Truncate every entry: lookups silently recompute the same results,
  // count the corruption, and quarantine the files.
  for (const auto& f : files) fs::resize_file(f, fs::file_size(f) / 2);
  cache.clear();
  cache.reset_stats();
  EXPECT_EQ(cache.footprint(g, spec, 4, 2), fp);
  EXPECT_EQ(cache.estimate(g, spec, cost), est);
  EXPECT_GE(cache.stats().disk_corrupt, 2u);
  EXPECT_EQ(cache.stats().disk_hits, 0u);
  bool quarantined = false;
  for (const auto& e : fs::directory_iterator(dir))
    quarantined |= e.path().extension() == ".quarantined";
  EXPECT_TRUE(quarantined);

  // The recomputes rewrote fresh entries; flip one bit in each.
  for (const auto& f : plan_files(dir)) {
    std::string bytes = slurp(f);
    ASSERT_FALSE(bytes.empty());
    bytes[bytes.size() / 3] = static_cast<char>(bytes[bytes.size() / 3] ^ 0x40);
    spill(f, bytes);
  }
  cache.clear();
  cache.reset_stats();
  EXPECT_EQ(cache.footprint(g, spec, 4, 2), fp);
  EXPECT_EQ(cache.estimate(g, spec, cost), est);
  EXPECT_GE(cache.stats().disk_corrupt, 2u);

  // Zero-length and version-bumped entries are likewise just misses. Every
  // file is corrupted: a lookup that hit a healthy entry could otherwise
  // short-circuit the chain (an estimate hit never touches the plan file).
  auto fresh = plan_files(dir);
  ASSERT_GE(fresh.size(), 2u);
  spill(fresh[0], "");
  for (std::size_t i = 1; i < fresh.size(); ++i)
    spill(fresh[i], patch_u32(slurp(fresh[i]), 4, kPlanFormatVersion + 1));
  cache.clear();
  cache.reset_stats();
  EXPECT_EQ(cache.footprint(g, spec, 4, 2), fp);
  EXPECT_EQ(cache.estimate(g, spec, cost), est);
  EXPECT_GE(cache.stats().disk_corrupt, 2u);
  fs::remove_all(dir);
}

TEST(PlanSerialize, SwappedDiskEntriesAreNeverServed) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  g.hazards().set_enabled(false);
  const fs::path dir = fresh_dir("plan_serialize_swap");
  PlanCache cache(32);
  cache.set_disk_dir(dir.string());

  PipelineSpec a = fig7_spec(g, 32, 128);
  PipelineSpec b = fig7_spec(g, 32, 512);  // wider planes: a larger footprint
  const Bytes fpa = cache.footprint(g, a, 4, 2);
  const Bytes fpb = cache.footprint(g, b, 4, 2);
  ASSERT_NE(fpa, fpb);

  // Swap the two files on disk: each now holds a record whose embedded key
  // disagrees with the key it is looked up under. The echo check must treat
  // both as corrupt and recompute — a hash collision or a renamed file can
  // never serve the wrong artifact.
  auto files = plan_files(dir);
  ASSERT_EQ(files.size(), 2u);
  const fs::path tmp = dir / "swap.tmp";
  fs::rename(files[0], tmp);
  fs::rename(files[1], files[0]);
  fs::rename(tmp, files[1]);

  cache.clear();
  cache.reset_stats();
  EXPECT_EQ(cache.footprint(g, a, 4, 2), fpa);
  EXPECT_EQ(cache.footprint(g, b, 4, 2), fpb);
  EXPECT_EQ(cache.stats().disk_hits, 0u);
  EXPECT_EQ(cache.stats().disk_corrupt, 2u);
  fs::remove_all(dir);
}

TEST(PlanSerialize, BundleLoadSkipsForeignAndTuneRecords) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  g.hazards().set_enabled(false);
  PlanCache scratch(8);
  PipelineSpec spec = fig4_spec(g, 32, 32);
  spec.chunk_size = 4;
  spec.num_streams = 2;

  PlanBundle bundle;
  bundle.artifacts.push_back(make_plan_artifact(g, scratch, spec));
  PlanArtifact tune;
  tune.kind = ArtifactKind::Tune;
  tune.key = tune_artifact_key(g.profile(), "stream/small");
  bundle.artifacts.push_back(tune);
  PlanArtifact foreign;
  foreign.kind = ArtifactKind::Footprint;
  foreign.key = "not-a-cache-key";
  foreign.footprint = 7;
  bundle.artifacts.push_back(foreign);

  PlanCache cache(8);
  // Only the plan entry is admissible: Tune records carry no cache entry
  // and the foreign key has no recognised prefix.
  EXPECT_EQ(cache.load_bundle(bundle), 1u);
  cache.reset_stats();
  const PlanCache::Compiled built = cache.compile(g, spec);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_NO_THROW(built.plan->validate());
}

}  // namespace
}  // namespace gpupipe::core
