// Multi-tenant scheduler tests: queue policies, admission control,
// backpressure/retry, the 2-device consolidation criterion, determinism,
// and the sched. telemetry namespace.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "common/metrics.hpp"
#include "core/plan.hpp"
#include "core/plan_cache.hpp"
#include "gpu/device_profile.hpp"
#include "sched/scheduler.hpp"
#include "sched/workloads.hpp"

namespace gpupipe {
namespace {

// --- Fixtures -------------------------------------------------------------

struct Machine {
  std::shared_ptr<gpu::SharedContext> ctx = gpu::make_shared_context();
  std::vector<std::unique_ptr<gpu::Gpu>> gpus;
  std::vector<gpu::Gpu*> devices;

  explicit Machine(int n, const gpu::DeviceProfile& profile = gpu::nvidia_k40m()) {
    for (int i = 0; i < n; ++i) {
      gpus.push_back(std::make_unique<gpu::Gpu>(profile, gpu::ExecMode::Functional, ctx));
      devices.push_back(gpus.back().get());
    }
  }
};

SimTime solo_runtime(const sched::JobMixLine& line, int index) {
  sched::ServeJob sj = sched::make_serve_job(line, index);
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Functional);
  core::Pipeline p(g, sj.job.spec);
  const SimTime t0 = g.host_now();
  p.run(sj.job.kernel);
  return g.host_now() - t0;
}

struct MixRun {
  sched::ScheduleReport report;
  std::vector<double> checksums;
};

MixRun run_mix(const std::vector<sched::JobMixLine>& mix, sched::SchedulerOptions opts,
               int num_devices = 2) {
  Machine m(num_devices);
  sched::Scheduler s(m.devices, opts);
  std::vector<sched::ServeJob> jobs;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    jobs.push_back(sched::make_serve_job(mix[i], static_cast<int>(i)));
    s.submit(jobs.back().job);
  }
  MixRun r;
  r.report = s.run();
  for (const auto& j : jobs) {
    EXPECT_TRUE(j.verify()) << j.job.name;
    r.checksums.push_back(j.output_checksum());
  }
  return r;
}

// The predicted footprint of a serve job's spec at a given shape, on a
// scratch device with the test profile.
Bytes footprint_at(const core::PipelineSpec& spec, std::int64_t c, int s) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  return core::predicted_pipeline_footprint(g, spec, c, s);
}

// --- JobQueue -------------------------------------------------------------

sched::JobQueue::Item item(int job, int priority, SimTime estimate,
                           SimTime not_before = 0.0) {
  sched::JobQueue::Item it;
  it.job = job;
  it.seq = static_cast<std::uint64_t>(job);
  it.priority = priority;
  it.estimate = estimate;
  it.not_before = not_before;
  return it;
}

TEST(JobQueue, FifoPicksSubmissionOrder) {
  sched::JobQueue q(sched::QueuePolicy::Fifo, 8);
  ASSERT_TRUE(q.push(item(2, 5, 0.1)));
  ASSERT_TRUE(q.push(item(0, 1, 9.0)));
  ASSERT_TRUE(q.push(item(1, 9, 0.5)));
  EXPECT_EQ(q.pick(0.0)->job, 0);
}

TEST(JobQueue, PriorityPicksHighestThenFifo) {
  sched::JobQueue q(sched::QueuePolicy::Priority, 8);
  ASSERT_TRUE(q.push(item(0, 1, 1.0)));
  ASSERT_TRUE(q.push(item(1, 3, 1.0)));
  ASSERT_TRUE(q.push(item(2, 3, 0.1)));  // ties with job 1; loses on seq
  EXPECT_EQ(q.pick(0.0)->job, 1);
  q.remove(1);
  EXPECT_EQ(q.pick(0.0)->job, 2);
}

TEST(JobQueue, SjfPicksSmallestEstimate) {
  sched::JobQueue q(sched::QueuePolicy::Sjf, 8);
  ASSERT_TRUE(q.push(item(0, 0, 3.0)));
  ASSERT_TRUE(q.push(item(1, 0, 1.0)));
  ASSERT_TRUE(q.push(item(2, 0, 1.0)));  // ties with job 1; loses on seq
  EXPECT_EQ(q.pick(0.0)->job, 1);
}

TEST(JobQueue, RetryGateSkipsUntilDue) {
  sched::JobQueue q(sched::QueuePolicy::Fifo, 8);
  ASSERT_TRUE(q.push(item(0, 0, 1.0, 5.0)));
  ASSERT_TRUE(q.push(item(1, 0, 1.0)));
  EXPECT_EQ(q.pick(0.0)->job, 1);  // job 0 gated
  q.remove(1);
  EXPECT_EQ(q.pick(0.0), nullptr);
  EXPECT_EQ(q.next_retry(0.0), 5.0);
  EXPECT_EQ(q.pick(5.0)->job, 0);
}

TEST(JobQueue, BoundedCapacity) {
  sched::JobQueue q(sched::QueuePolicy::Fifo, 1);
  EXPECT_TRUE(q.push(item(0, 0, 1.0)));
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.push(item(1, 0, 1.0)));
}

// --- AdmissionController --------------------------------------------------

TEST(Admission, ShrinksOversizedJobToFitCap) {
  sched::ServeJob sj = sched::make_serve_job({"stream", "large", 0, 0.0, {}}, 0);
  const Bytes full = footprint_at(sj.job.spec, sj.job.spec.chunk_size,
                                  sj.job.spec.num_streams);
  Machine m(1);
  sched::AdmissionController ac(m.devices, full / 2);
  const sched::AdmissionDecision d = ac.try_admit(0, sj.job.spec);
  ASSERT_TRUE(d.admitted);
  EXPECT_TRUE(d.shrunk);
  EXPECT_LE(d.footprint, full / 2);
  EXPECT_LT(d.chunk_size, sj.job.spec.chunk_size);
}

TEST(Admission, RejectsWhenMinimalShapeExceedsCap) {
  sched::ServeJob sj = sched::make_serve_job({"stream", "small", 0, 0.0, {}}, 0);
  const Bytes min_fp = footprint_at(sj.job.spec, 1, 1);
  Machine m(1);
  sched::AdmissionController ac(m.devices, min_fp - 1);
  EXPECT_FALSE(ac.try_admit(0, sj.job.spec).admitted);
  EXPECT_TRUE(ac.impossible(0, sj.job.spec));
}

TEST(Admission, CommitReducesBudgetAndReleaseRestoresIt) {
  sched::ServeJob sj = sched::make_serve_job({"stream", "small", 0, 0.0, {}}, 0);
  const Bytes full = footprint_at(sj.job.spec, sj.job.spec.chunk_size,
                                  sj.job.spec.num_streams);
  const Bytes min_fp = footprint_at(sj.job.spec, 1, 1);
  Machine m(1);
  sched::AdmissionController ac(m.devices, full + min_fp / 2);
  const auto d = ac.try_admit(0, sj.job.spec);
  ASSERT_TRUE(d.admitted);
  EXPECT_FALSE(d.shrunk);
  ac.commit(0, d.footprint);
  // Remaining budget is below even the minimal shape: not admissible now,
  // but not impossible — a retry after release must succeed.
  EXPECT_FALSE(ac.try_admit(0, sj.job.spec).admitted);
  EXPECT_FALSE(ac.impossible(0, sj.job.spec));
  ac.release(0, d.footprint);
  EXPECT_TRUE(ac.try_admit(0, sj.job.spec).admitted);
  EXPECT_EQ(ac.committed(0), 0u);
  EXPECT_EQ(ac.committed_peak(0), d.footprint);
}

// --- Scheduler: consolidation acceptance ----------------------------------

TEST(Scheduler, EightJobMixOnTwoDevicesBeatsSoloRuns) {
  const auto mix = sched::default_job_mix(8);
  SimTime sum_solo = 0.0;
  for (std::size_t i = 0; i < mix.size(); ++i)
    sum_solo += solo_runtime(mix[i], static_cast<int>(i));

  const Bytes cap = 64 * MiB;
  Machine m(2);
  sched::SchedulerOptions opts;
  opts.device_mem_cap = cap;
  sched::Scheduler s(m.devices, opts);
  std::vector<sched::ServeJob> jobs;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    jobs.push_back(sched::make_serve_job(mix[i], static_cast<int>(i)));
    s.submit(jobs.back().job);
  }
  const sched::ScheduleReport rep = s.run();

  EXPECT_EQ(rep.completed, 8);
  EXPECT_EQ(rep.rejected, 0);
  // The acceptance criterion: consolidation must beat back-to-back solo
  // runs by a clear margin.
  EXPECT_LT(rep.makespan, 0.8 * sum_solo);
  // Every job ran on some device, results are correct.
  for (const auto& j : jobs) EXPECT_TRUE(j.verify()) << j.job.name;
  // Committed footprints bound the real allocations: device peak memory
  // never exceeds the configured cap.
  for (const auto& g : m.gpus) EXPECT_LE(g->device_mem_stats().peak, cap);
  for (int d = 0; d < 2; ++d) EXPECT_LE(s.admission().committed_peak(d), cap);
  // Both devices actually served jobs.
  int dev0 = 0, dev1 = 0;
  for (const auto& r : rep.jobs) (r.device == 0 ? dev0 : dev1)++;
  EXPECT_GT(dev0, 0);
  EXPECT_GT(dev1, 0);
}

// --- Scheduler: admission retry and backpressure --------------------------

// Cap sized so one small job at full shape fits but a second does not even
// at (chunk 1, stream 1): the second job must retry until the first
// releases its footprint.
TEST(Scheduler, AdmissionFailureRetriesWithBackoffUntilMemoryFrees) {
  const sched::JobMixLine line{"stream", "small", 0, 0.0, {}};
  sched::ServeJob probe = sched::make_serve_job(line, 0);
  const Bytes full = footprint_at(probe.job.spec, probe.job.spec.chunk_size,
                                  probe.job.spec.num_streams);
  const Bytes min_fp = footprint_at(probe.job.spec, 1, 1);

  Machine m(1);
  sched::SchedulerOptions opts;
  opts.device_mem_cap = full + min_fp - 1;
  opts.max_admission_attempts = 64;  // never reject in this test
  sched::Scheduler s(m.devices, opts);
  std::vector<sched::ServeJob> jobs;
  for (int i = 0; i < 2; ++i) {
    jobs.push_back(sched::make_serve_job(line, i));
    s.submit(jobs.back().job);
  }
  const sched::ScheduleReport rep = s.run();

  EXPECT_EQ(rep.completed, 2);
  EXPECT_GT(rep.admission_retries, 0);
  EXPECT_GT(rep.jobs[1].admission_attempts, 1);
  // The second job could only start after the first finished.
  EXPECT_GE(rep.jobs[1].start, rep.jobs[0].finish);
  for (const auto& j : jobs) EXPECT_TRUE(j.verify());
}

TEST(Scheduler, FullQueueBackpressuresArrivals) {
  const sched::JobMixLine line{"stream", "small", 0, 0.0, {}};
  sched::ServeJob probe = sched::make_serve_job(line, 0);
  const Bytes full = footprint_at(probe.job.spec, probe.job.spec.chunk_size,
                                  probe.job.spec.num_streams);
  const Bytes min_fp = footprint_at(probe.job.spec, 1, 1);

  Machine m(1);
  sched::SchedulerOptions opts;
  opts.device_mem_cap = full + min_fp - 1;  // one job at a time
  opts.queue_capacity = 1;
  opts.max_admission_attempts = 64;
  sched::Scheduler s(m.devices, opts);
  std::vector<sched::ServeJob> jobs;
  for (int i = 0; i < 3; ++i) {
    jobs.push_back(sched::make_serve_job(line, i));
    s.submit(jobs.back().job);
  }
  const sched::ScheduleReport rep = s.run();

  // Job 0 admits instantly; job 1 occupies the single queue slot; job 2's
  // arrival finds the queue full.
  EXPECT_EQ(rep.completed, 3);
  EXPECT_GT(rep.backpressure_events, 0);
  EXPECT_GT(rep.jobs[2].enqueue_time, rep.jobs[2].arrival);
}

TEST(Scheduler, RejectsJobThatCannotFitAnIdleDevice) {
  const sched::JobMixLine line{"stream", "small", 0, 0.0, {}};
  sched::ServeJob probe = sched::make_serve_job(line, 0);
  const Bytes min_fp = footprint_at(probe.job.spec, 1, 1);

  Machine m(1);
  sched::SchedulerOptions opts;
  opts.device_mem_cap = min_fp - 1;
  sched::Scheduler s(m.devices, opts);
  sched::ServeJob sj = sched::make_serve_job(line, 0);
  s.submit(sj.job);
  const sched::ScheduleReport rep = s.run();
  EXPECT_EQ(rep.completed, 0);
  EXPECT_EQ(rep.rejected, 1);
  EXPECT_EQ(rep.jobs[0].state, sched::JobState::Rejected);
  EXPECT_FALSE(rep.jobs[0].reject_reason.empty());
}

// --- Scheduler: policy behavior under contention --------------------------

// One slot of device memory, a burst of three jobs: the policy decides who
// gets the slot when it frees.
TEST(Scheduler, PriorityPolicyOvertakesFifoOrderUnderContention) {
  const sched::JobMixLine line{"stream", "small", 0, 0.0, {}};
  sched::ServeJob probe = sched::make_serve_job(line, 0);
  const Bytes full = footprint_at(probe.job.spec, probe.job.spec.chunk_size,
                                  probe.job.spec.num_streams);
  const Bytes min_fp = footprint_at(probe.job.spec, 1, 1);

  auto run_policy = [&](sched::QueuePolicy policy) {
    Machine m(1);
    sched::SchedulerOptions opts;
    opts.queue_policy = policy;
    opts.device_mem_cap = full + min_fp - 1;
    opts.max_admission_attempts = 64;
    sched::Scheduler s(m.devices, opts);
    std::vector<sched::ServeJob> jobs;
    for (int i = 0; i < 3; ++i) {
      jobs.push_back(sched::make_serve_job(line, i));
      jobs.back().job.priority = i;  // job 2 most urgent, submitted last
      s.submit(jobs.back().job);
    }
    return s.run();
  };

  const auto fifo = run_policy(sched::QueuePolicy::Fifo);
  ASSERT_EQ(fifo.completed, 3);
  EXPECT_LT(fifo.jobs[1].start, fifo.jobs[2].start);

  const auto prio = run_policy(sched::QueuePolicy::Priority);
  ASSERT_EQ(prio.completed, 3);
  EXPECT_LT(prio.jobs[2].start, prio.jobs[1].start);
}

// --- Scheduler: determinism ----------------------------------------------

void expect_identical(const MixRun& a, const MixRun& b) {
  ASSERT_EQ(a.report.jobs.size(), b.report.jobs.size());
  EXPECT_EQ(a.report.makespan, b.report.makespan);
  EXPECT_EQ(a.report.admission_retries, b.report.admission_retries);
  EXPECT_EQ(a.report.backpressure_events, b.report.backpressure_events);
  for (std::size_t i = 0; i < a.report.jobs.size(); ++i) {
    const auto& x = a.report.jobs[i];
    const auto& y = b.report.jobs[i];
    EXPECT_EQ(x.state, y.state) << i;
    EXPECT_EQ(x.device, y.device) << i;
    EXPECT_EQ(x.start, y.start) << i;
    EXPECT_EQ(x.finish, y.finish) << i;
    EXPECT_EQ(x.chunk_size, y.chunk_size) << i;
    EXPECT_EQ(x.num_streams, y.num_streams) << i;
    EXPECT_EQ(x.admission_attempts, y.admission_attempts) << i;
  }
  EXPECT_EQ(a.checksums, b.checksums);
}

TEST(Scheduler, SameMixTwiceIsBitIdentical) {
  const auto mix = sched::default_job_mix(9);
  sched::SchedulerOptions opts;
  opts.queue_policy = sched::QueuePolicy::Sjf;
  expect_identical(run_mix(mix, opts), run_mix(mix, opts));
}

TEST(Scheduler, PlanCacheToggleDoesNotChangeTheSchedule) {
  const auto mix = sched::default_job_mix(9);
  sched::SchedulerOptions opts;
  opts.queue_policy = sched::QueuePolicy::Sjf;
  core::PlanCache& cache = core::PlanCache::instance();
  cache.set_capacity(0);  // every planning call computes directly
  const MixRun off = run_mix(mix, opts);
  cache.set_capacity(core::PlanCache::kDefaultCapacity);
  cache.clear();
  const MixRun cold = run_mix(mix, opts);
  const MixRun warm = run_mix(mix, opts);  // all-hit replay
  expect_identical(off, cold);
  expect_identical(off, warm);
}

// The bytes the admission controller commits are the bytes the solver
// checked against the budget: the device's real allocation peak must stay
// under the per-device committed peak.
TEST(Scheduler, CommittedFootprintsBoundRealDevicePeaks) {
  const auto mix = sched::default_job_mix(8);
  Machine m(2);
  sched::SchedulerOptions opts;
  opts.device_mem_cap = 64 * MiB;
  sched::Scheduler s(m.devices, opts);
  std::vector<sched::ServeJob> jobs;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    jobs.push_back(sched::make_serve_job(mix[i], static_cast<int>(i)));
    s.submit(jobs.back().job);
  }
  const sched::ScheduleReport rep = s.run();
  EXPECT_EQ(rep.completed, 8);
  for (int d = 0; d < 2; ++d) {
    EXPECT_GT(s.admission().committed_peak(d), 0u);
    EXPECT_LE(m.gpus[d]->device_mem_stats().peak, s.admission().committed_peak(d))
        << "device " << d;
  }
}

TEST(Scheduler, MetricsToggleDoesNotChangeTheSchedule) {
  const auto mix = sched::default_job_mix(8);
  const bool was = telemetry::metrics_enabled();
  telemetry::set_metrics_enabled(false);
  const MixRun off = run_mix(mix, {});
  telemetry::set_metrics_enabled(true);
  const MixRun on = run_mix(mix, {});
  telemetry::set_metrics_enabled(was);
  expect_identical(off, on);
}

// --- Scheduler: deadlines and telemetry ----------------------------------

TEST(Scheduler, ImpossibleDeadlineIsRecordedNotEnforced) {
  Machine m(1);
  sched::Scheduler s(m.devices, {});
  sched::ServeJob sj = sched::make_serve_job({"stream", "small", 0, 0.0, {}}, 0);
  sj.job.deadline = 1e-9;  // before the first transfer can finish
  s.submit(sj.job);
  const sched::ScheduleReport rep = s.run();
  EXPECT_EQ(rep.completed, 1);
  EXPECT_TRUE(rep.jobs[0].deadline_missed);
  EXPECT_EQ(rep.deadline_misses, 1);
  EXPECT_TRUE(sj.verify());
}

TEST(Scheduler, CollectMetricsPopulatesSchedNamespace) {
  const auto mix = sched::default_job_mix(8);
  Machine m(2);
  sched::Scheduler s(m.devices, {});
  std::vector<sched::ServeJob> jobs;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    jobs.push_back(sched::make_serve_job(mix[i], static_cast<int>(i)));
    s.submit(jobs.back().job);
  }
  const sched::ScheduleReport rep = s.run();

  telemetry::Registry reg;
  s.collect_metrics(reg, "serve.");
  EXPECT_EQ(reg.counter_value("serve.sched.jobs_submitted"), 8);
  EXPECT_EQ(reg.counter_value("serve.sched.jobs_completed"), 8);
  EXPECT_EQ(reg.counter_value("serve.sched.jobs_rejected"), 0);
  EXPECT_DOUBLE_EQ(reg.gauge_value("serve.sched.makespan_s"), rep.makespan);
  EXPECT_GT(reg.gauge_value("serve.sched.dev0.mem_cap_bytes"), 0.0);
  EXPECT_GT(reg.gauge_value("serve.sched.dev0.utilization"), 0.0);
  EXPECT_GT(reg.gauge_value("serve.sched.dev0.committed_peak_bytes"), 0.0);
  // Utilization is busy time over makespan with in-flight work pro-rated to
  // the sampling clock; it can never exceed 1.0 per device. (A regression
  // here means Engine::busy_time is crediting in-flight tasks their full
  // duration again.)
  for (int dev = 0; dev < 2; ++dev) {
    const double util =
        reg.gauge_value("serve.sched.dev" + std::to_string(dev) + ".utilization");
    EXPECT_GE(util, 0.0);
    EXPECT_LE(util, 1.0);
  }
  // The scheduler's snapshot includes the plan-cache namespace (the cache
  // serves every admission estimate; see docs/observability.md).
  EXPECT_GT(reg.gauge_value("serve.plan_cache.capacity"), 0.0);
  EXPECT_GT(reg.gauge_value("serve.plan_cache.entries"), 0.0);
  EXPECT_GT(reg.counter_value("serve.plan_cache.hits"), 0);
  const auto& hist = reg.histograms();
  ASSERT_TRUE(hist.count("serve.sched.wait_s"));
  ASSERT_TRUE(hist.count("serve.sched.turnaround_s"));
  EXPECT_EQ(hist.at("serve.sched.wait_s").count(), 8);
  EXPECT_EQ(hist.at("serve.sched.turnaround_s").count(), 8);
  // The snapshot is reproducible: two collections print identically.
  telemetry::Registry reg2;
  s.collect_metrics(reg2, "serve.");
  std::ostringstream a, b;
  reg.to_json(a);
  reg2.to_json(b);
  EXPECT_EQ(a.str(), b.str());
}

// --- Workloads ------------------------------------------------------------

TEST(Workloads, ParsesJobMixWithCommentsAndDeadlines) {
  std::istringstream is(
      "# a comment line\n"
      "stream medium 1 0.000\n"
      "\n"
      "stencil large 0 0.002 0.05  # trailing comment\n");
  const auto mix = sched::parse_job_mix(is);
  ASSERT_EQ(mix.size(), 2u);
  EXPECT_EQ(mix[0].app, "stream");
  EXPECT_EQ(mix[0].size, "medium");
  EXPECT_EQ(mix[0].priority, 1);
  EXPECT_FALSE(mix[0].deadline.has_value());
  EXPECT_EQ(mix[1].app, "stencil");
  ASSERT_TRUE(mix[1].deadline.has_value());
  EXPECT_DOUBLE_EQ(*mix[1].deadline, 0.05);
}

TEST(Workloads, RejectsMalformedMixLines) {
  std::istringstream bad_app("warp medium 0 0.0\n");
  EXPECT_THROW(sched::parse_job_mix(bad_app), Error);
  std::istringstream missing("stream medium\n");
  EXPECT_THROW(sched::parse_job_mix(missing), Error);
  std::istringstream trailing("stream medium 0 0.0 0.1 junk\n");
  EXPECT_THROW(sched::parse_job_mix(trailing), Error);
}

TEST(Workloads, DefaultMixIsDeterministicAndSubmittable) {
  const auto a = sched::default_job_mix(6);
  const auto b = sched::default_job_mix(6);
  ASSERT_EQ(a.size(), 6u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].app, b[i].app);
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    sched::ServeJob sj = sched::make_serve_job(a[i], static_cast<int>(i));
    EXPECT_NO_THROW(sj.job.spec.validate());
  }
}

}  // namespace
}  // namespace gpupipe
