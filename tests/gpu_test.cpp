// Unit tests for the simulated GPU runtime: streams, events, transfer
// timing, kernel cost model, functional copies, and accounting.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "gpu/device_profile.hpp"
#include "gpu/gpu.hpp"

namespace gpupipe::gpu {
namespace {

DeviceProfile simple_profile() {
  // Hand-rolled profile with round numbers so durations are predictable.
  DeviceProfile p;
  p.name = "test";
  p.total_memory = 1 * GiB;
  p.reserved_memory = 0;
  p.peak_flops = 1e12;
  p.mem_bandwidth = 1e11;
  p.pcie_bandwidth = 1e10;
  p.pcie_half_saturation = 0;  // flat curve: exact timing expected
  p.pcie_row_half_saturation = 0;
  p.pageable_penalty = 0.5;
  p.copy_setup_latency = 0.0;
  p.copy_segment_latency = 0.0;
  p.kernel_launch_latency = 0.0;
  p.api_call_host_overhead = 0.0;
  p.sched_overhead_per_stream = 0.0;
  p.h2d_engines = 1;
  p.d2h_engines = 1;
  p.unified_copy_engine = false;
  p.max_concurrent_kernels = 1;
  return p;
}

TEST(Gpu, SynchronousCopyRoundTripsData) {
  Gpu g(simple_profile());
  std::vector<double> src(100, 3.5), dst(100, 0.0);
  std::byte* dev = g.device_malloc(100 * sizeof(double));
  g.memcpy_h2d(dev, reinterpret_cast<std::byte*>(src.data()), 100 * sizeof(double));
  g.memcpy_d2h(reinterpret_cast<std::byte*>(dst.data()), dev, 100 * sizeof(double));
  EXPECT_EQ(src, dst);
}

TEST(Gpu, TransferDurationMatchesBandwidth) {
  Gpu g(simple_profile());
  std::byte* host = g.host_alloc(10'000'000, /*pinned=*/true);
  std::byte* dev = g.device_malloc(10'000'000);
  auto task = g.memcpy_h2d_async(dev, host, 10'000'000, g.default_stream());
  g.synchronize();
  // 10 MB at 10 GB/s = 1 ms.
  EXPECT_NEAR(task->duration(), 1e-3, 1e-12);
}

TEST(Gpu, PageableHostMemoryIsSlower) {
  Gpu g(simple_profile());
  std::byte* pinned = g.host_alloc(1'000'000, true);
  std::byte* pageable = g.host_alloc(1'000'000, false);
  EXPECT_TRUE(g.is_pinned(pinned));
  EXPECT_FALSE(g.is_pinned(pageable));
  std::byte* dev = g.device_malloc(1'000'000);
  auto t1 = g.memcpy_h2d_async(dev, pinned, 1'000'000, g.default_stream());
  auto t2 = g.memcpy_h2d_async(dev, pageable, 1'000'000, g.default_stream());
  g.synchronize();
  EXPECT_NEAR(t2->duration(), 2.0 * t1->duration(), 1e-12);  // penalty 0.5
}

TEST(Gpu, BandwidthSaturationCurvePenalisesSmallTransfers) {
  auto p = simple_profile();
  p.pcie_half_saturation = 1 * MiB;
  EXPECT_NEAR(p.transfer_bandwidth(1 * MiB, 1 * MiB, true), 0.5e10, 1e3);
  EXPECT_GT(p.transfer_bandwidth(100 * MiB, 100 * MiB, true), 0.99e10);
  // 2-D: narrow rows cut bandwidth further.
  p.pcie_row_half_saturation = 2 * KiB;
  EXPECT_NEAR(p.transfer_bandwidth(100 * MiB, 2 * KiB, true), 0.495e10, 1e7);
}

TEST(Gpu, KernelDurationFollowsRoofline) {
  Gpu g(simple_profile());
  KernelDesc compute_bound;
  compute_bound.flops = 1e9;  // 1 ms at 1 TFLOP/s
  compute_bound.bytes = 1000;
  auto t1 = g.launch(g.default_stream(), std::move(compute_bound));
  KernelDesc memory_bound;
  memory_bound.flops = 1000;
  memory_bound.bytes = 200'000'000;  // 2 ms at 100 GB/s
  auto t2 = g.launch(g.default_stream(), std::move(memory_bound));
  g.synchronize();
  EXPECT_NEAR(t1->duration(), 1e-3, 1e-12);
  EXPECT_NEAR(t2->duration(), 2e-3, 1e-12);
}

TEST(Gpu, FixedDurationOverridesRoofline) {
  Gpu g(simple_profile());
  KernelDesc k;
  k.flops = 1e12;
  k.fixed_duration = 5e-6;
  auto t = g.launch(g.default_stream(), std::move(k));
  g.synchronize();
  EXPECT_NEAR(t->duration(), 5e-6, 1e-15);
}

TEST(Gpu, StreamsSerialiseAndOverlapAcrossEngines) {
  Gpu g(simple_profile());
  std::byte* host = g.host_alloc(10'000'000);
  std::byte* dev = g.device_malloc(10'000'000);
  Stream& s = g.create_stream();
  // copy (1 ms on h2d engine) then kernel (1 ms on compute): same stream =>
  // serial => 2 ms.
  g.memcpy_h2d_async(dev, host, 10'000'000, s);
  KernelDesc k;
  k.flops = 1e9;
  auto kt = g.launch(s, std::move(k));
  g.synchronize();
  EXPECT_NEAR(kt->end_time(), 2e-3, 1e-9);

  // On different streams, copy and kernel overlap: both end at ~1 ms after
  // the current time.
  const SimTime base = g.host_now();
  Stream& s2 = g.create_stream();
  auto ct = g.memcpy_h2d_async(dev, host, 10'000'000, s2);
  KernelDesc k2;
  k2.flops = 1e9;
  auto kt2 = g.launch(g.create_stream(), std::move(k2));
  g.synchronize();
  EXPECT_NEAR(ct->end_time() - base, 1e-3, 1e-9);
  EXPECT_NEAR(kt2->end_time() - base, 1e-3, 1e-9);
}

TEST(Gpu, UnifiedCopyEngineSerialisesBothDirections) {
  auto p = simple_profile();
  p.unified_copy_engine = true;
  Gpu g(p);
  std::byte* host = g.host_alloc(10'000'000);
  std::byte* dev = g.device_malloc(10'000'000);
  Stream& s1 = g.create_stream();
  Stream& s2 = g.create_stream();
  g.memcpy_h2d_async(dev, host, 10'000'000, s1);
  auto t2 = g.memcpy_d2h_async(host, dev, 10'000'000, s2);
  g.synchronize();
  EXPECT_NEAR(t2->end_time(), 2e-3, 1e-9);  // serialised despite 2 streams
}

TEST(Gpu, EventsOrderWorkAcrossStreams) {
  Gpu g(simple_profile());
  std::byte* host = g.host_alloc(10'000'000);
  std::byte* dev = g.device_malloc(10'000'000);
  Stream& producer = g.create_stream();
  Stream& consumer = g.create_stream();
  g.memcpy_h2d_async(dev, host, 10'000'000, producer);  // 1 ms
  EventPtr ev = g.record_event(producer);
  g.wait_event(consumer, ev);
  KernelDesc k;
  k.flops = 1e9;  // 1 ms
  auto kt = g.launch(consumer, std::move(k));
  g.synchronize();
  EXPECT_NEAR(kt->start_time(), 1e-3, 1e-9);  // waited for the copy
  EXPECT_TRUE(ev->complete());
  EXPECT_NEAR(ev->timestamp(), 1e-3, 1e-9);
}

TEST(Gpu, QueryDoesNotAdvanceTime) {
  Gpu g(simple_profile());
  std::byte* host = g.host_alloc(1'000'000);
  std::byte* dev = g.device_malloc(1'000'000);
  g.memcpy_h2d_async(dev, host, 1'000'000, g.default_stream());
  EventPtr ev = g.record_event(g.default_stream());
  EXPECT_FALSE(g.query(ev));
  g.synchronize(ev);
  EXPECT_TRUE(g.query(ev));
}

TEST(Gpu, Pitched2dCopyMovesTheRightBytes) {
  Gpu g(simple_profile());
  // A 4x8 host matrix into a pitched device buffer and back.
  std::vector<std::byte> src(32), dst(32, std::byte{0});
  for (int i = 0; i < 32; ++i) src[static_cast<std::size_t>(i)] = static_cast<std::byte>(i);
  Pitched dev = g.device_malloc_pitched(8, 4);
  EXPECT_GE(dev.pitch, 8u);
  g.memcpy2d_h2d_async(dev.ptr, dev.pitch, src.data(), 8, 8, 4, g.default_stream());
  g.memcpy2d_d2h_async(dst.data(), 8, dev.ptr, dev.pitch, 8, 4, g.default_stream());
  g.synchronize();
  EXPECT_EQ(src, dst);
}

TEST(Gpu, CopyBeyondDeviceAllocationThrows) {
  Gpu g(simple_profile());
  std::byte* host = g.host_alloc(2048);
  std::byte* dev = g.device_malloc(1024);
  EXPECT_THROW(g.memcpy_h2d_async(dev, host, 2048, g.default_stream()), Error);
  EXPECT_THROW(g.memcpy_d2h_async(host, dev + 512, 1024, g.default_stream()), Error);
}

TEST(Gpu, BoundsCheckingWorksInModeledModeToo) {
  Gpu g(simple_profile(), ExecMode::Modeled);
  std::byte* host = g.host_alloc(2048);
  std::byte* dev = g.device_malloc(1024);
  EXPECT_THROW(g.memcpy_h2d_async(dev, host, 2048, g.default_stream()), Error);
}

TEST(Gpu, DeviceToDeviceCopyWorks) {
  Gpu g(simple_profile());
  std::vector<std::byte> data(256, std::byte{9}), out(256, std::byte{0});
  std::byte* d1 = g.device_malloc(256);
  std::byte* d2 = g.device_malloc(256);
  g.memcpy_h2d(d1, data.data(), 256);
  g.memcpy_d2d_async(d2, d1, 256, g.default_stream());
  g.synchronize();
  g.memcpy_d2h(out.data(), d2, 256);
  EXPECT_EQ(data, out);
}

TEST(Gpu, HostClockAdvancesWithApiOverheadAndWaits) {
  auto p = simple_profile();
  p.api_call_host_overhead = usec(10.0);
  Gpu g(p);
  const SimTime t0 = g.host_now();
  std::byte* dev = g.device_malloc(1024);  // one API call
  EXPECT_NEAR(g.host_now() - t0, usec(10.0), 1e-12);
  g.host_compute(msec(1.0));
  EXPECT_NEAR(g.host_now() - t0, usec(10.0) + msec(1.0), 1e-12);
  (void)dev;
}

TEST(Gpu, PerStreamSchedulingOverheadExtendsOps) {
  auto p = simple_profile();
  p.sched_overhead_per_stream = usec(5.0);
  Gpu g(p);
  std::byte* host = g.host_alloc(1'000'000);
  std::byte* dev = g.device_malloc(1'000'000);
  Stream& s1 = g.create_stream();
  auto t1 = g.memcpy_h2d_async(dev, host, 1'000'000, s1);
  g.create_stream();
  g.create_stream();  // 3 live streams now
  auto t3 = g.memcpy_h2d_async(dev, host, 1'000'000, s1);
  g.synchronize();
  EXPECT_NEAR(t3->duration() - t1->duration(), usec(10.0), 1e-12);
}

TEST(Gpu, ReportedMemoryIncludesContextAndStreams) {
  auto p = simple_profile();
  p.context_memory = 64 * MiB;
  p.per_stream_memory = 8 * MiB;
  Gpu g(p);
  g.device_malloc(1 * MiB);
  g.create_stream();
  g.create_stream();
  EXPECT_EQ(g.reported_peak_memory(), 1 * MiB + 64 * MiB + 2 * 8 * MiB);
}

TEST(Gpu, DestroyStreamReducesLiveCount) {
  Gpu g(simple_profile());
  Stream& s = g.create_stream();
  EXPECT_EQ(g.live_streams(), 1);
  g.destroy_stream(s);
  EXPECT_EQ(g.live_streams(), 0);
  EXPECT_THROW(g.destroy_stream(g.default_stream()), Error);
}

TEST(Gpu, ModeledModeSkipsKernelBodies) {
  Gpu g(simple_profile(), ExecMode::Modeled);
  bool ran = false;
  KernelDesc k;
  k.flops = 1e6;
  k.body = [&] { ran = true; };
  g.launch(g.default_stream(), std::move(k));
  g.synchronize();
  EXPECT_FALSE(ran);
}

TEST(Gpu, TraceRecordsAllOperationKinds) {
  Gpu g(simple_profile());
  std::byte* host = g.host_alloc(4096);
  std::byte* dev = g.device_malloc(4096);
  g.memcpy_h2d(dev, host, 4096);
  KernelDesc k;
  k.flops = 100;
  g.launch(g.default_stream(), std::move(k));
  g.memcpy_d2h(host, dev, 4096);
  g.synchronize();
  auto by_kind = g.trace().time_by_kind();
  EXPECT_TRUE(by_kind.count(sim::SpanKind::H2D));
  EXPECT_TRUE(by_kind.count(sim::SpanKind::D2H));
  EXPECT_TRUE(by_kind.count(sim::SpanKind::Kernel));
}

TEST(Gpu, ShippedProfilesAreSane) {
  for (const auto& p : {nvidia_k40m(), amd_hd7970()}) {
    EXPECT_GT(p.usable_memory(), 0u);
    EXPECT_GT(p.peak_flops, 0.0);
    EXPECT_GT(p.pcie_bandwidth, 0.0);
    EXPECT_GT(p.mem_bandwidth, p.pcie_bandwidth);
    Gpu g(p);  // constructible
    EXPECT_GT(g.device_mem_free(), 0u);
  }
  // The AMD card is the memory-constrained one.
  EXPECT_LT(amd_hd7970().total_memory, nvidia_k40m().total_memory);
}

}  // namespace
}  // namespace gpupipe::gpu
