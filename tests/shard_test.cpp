// Elastic sharding tests: shard_pipeline_specs partitioning and halo
// wiring, P2P plan nodes (build, validate, DOT), the zero-host-bounce
// guarantee, run-twice determinism including a mid-run device-leave
// reshard, the P2P hazard ordering, and the new flight-recorder kinds'
// JSONL schema.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "common/export.hpp"
#include "common/flight_recorder.hpp"
#include "core/layout.hpp"
#include "core/plan.hpp"
#include "gpu/device_profile.hpp"
#include "gpu/hazard.hpp"
#include "sched/scheduler.hpp"
#include "sched/shard.hpp"
#include "sched/workloads.hpp"

namespace gpupipe {
namespace {

struct Machine {
  std::shared_ptr<gpu::SharedContext> ctx = gpu::make_shared_context();
  std::vector<std::unique_ptr<gpu::Gpu>> gpus;
  std::vector<gpu::Gpu*> devices;

  explicit Machine(int n, const gpu::DeviceProfile& profile = gpu::nvidia_k40m()) {
    for (int i = 0; i < n; ++i) {
      gpus.push_back(std::make_unique<gpu::Gpu>(profile, gpu::ExecMode::Functional, ctx));
      devices.push_back(gpus.back().get());
    }
  }
};

sched::JobMixLine stencil_large(SimTime arrival = 0.0) {
  sched::JobMixLine l;
  l.app = "stencil";
  l.size = "large";
  l.arrival = arrival;
  return l;
}

// Drives a ShardRun to completion on equal weights (no scheduler).
void drive(sched::ShardRun& run, const std::vector<int>& devs) {
  const std::vector<double> w(devs.size(), 1.0);
  while (!run.finished()) {
    ASSERT_TRUE(run.start_round(devs, w));
    // finish_round drains the round's pipelines, which advances sim time.
    run.finish_round();
  }
}

// --- shard_pipeline_specs -------------------------------------------------

TEST(ShardSpecs, PartitionsAndWiresHalos) {
  sched::ServeJob sj = sched::make_serve_job(stencil_large(), 0);
  const core::PipelineSpec& spec = sj.job.spec;
  const auto slices = core::shard_pipeline_specs(spec, {1.0, 1.0});
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_EQ(slices[0].begin, spec.loop_begin);
  EXPECT_EQ(slices[1].end, spec.loop_end);
  EXPECT_EQ(slices[0].end, slices[1].begin);
  // Slices tile the loop exactly.
  EXPECT_EQ((slices[0].end - slices[0].begin) + (slices[1].end - slices[1].begin),
            spec.iterations());

  // Every input array whose window overhangs its stride gets one halo per
  // boundary: shard 0 receives from shard 1, shard 1 sends to shard 0.
  int expected = 0;
  for (const core::ArraySpec& a : spec.arrays)
    if (!a.split.window_fn && a.split.window > a.split.start.scale) ++expected;
  ASSERT_GT(expected, 0) << "stencil job should have an overhanging input";
  ASSERT_EQ(slices[0].spec.halos.size(), static_cast<std::size_t>(expected));
  ASSERT_EQ(slices[1].spec.halos.size(), static_cast<std::size_t>(expected));
  for (const core::ShardHalo& h : slices[0].spec.halos) {
    const core::ArraySpec& a = spec.arrays[static_cast<std::size_t>(h.array)];
    EXPECT_EQ(h.recv_peer, 1);
    EXPECT_EQ(h.recv_lo, a.split.start(slices[1].begin));
    EXPECT_EQ(h.send_peer, -1);
  }
  for (const core::ShardHalo& h : slices[1].spec.halos) {
    const core::ArraySpec& a = spec.arrays[static_cast<std::size_t>(h.array)];
    const std::int64_t overhang = a.split.window - a.split.start.scale;
    EXPECT_EQ(h.send_peer, 0);
    EXPECT_EQ(h.send_hi, a.split.start(slices[1].begin) + overhang);
    EXPECT_EQ(h.recv_peer, -1);
  }
  for (const auto& s : slices) s.spec.validate();
}

TEST(ShardSpecs, SingleShardHasNoHalos) {
  sched::ServeJob sj = sched::make_serve_job(stencil_large(), 0);
  const auto slices = core::shard_pipeline_specs(sj.job.spec, {1.0});
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_TRUE(slices[0].spec.halos.empty());
}

TEST(ShardSpecs, ZeroWeightDevicesAreDropped) {
  sched::ServeJob sj = sched::make_serve_job(stencil_large(), 0);
  const auto slices = core::shard_pipeline_specs(sj.job.spec, {1.0, 0.0, 1.0});
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_EQ(slices[0].shard, 0);
  EXPECT_EQ(slices[1].shard, 1);  // renumbered contiguously
}

TEST(ShardSpecs, Shardable) {
  sched::ServeJob sj = sched::make_serve_job(stencil_large(), 0);
  EXPECT_TRUE(sched::shardable(sj.job.spec));
  core::PipelineSpec adaptive = sj.job.spec;
  adaptive.schedule = core::ScheduleKind::Adaptive;
  EXPECT_FALSE(sched::shardable(adaptive));
  const auto slices = core::shard_pipeline_specs(sj.job.spec, {1.0, 1.0});
  EXPECT_FALSE(sched::shardable(slices[0].spec)) << "already-sharded specs don't reshard";
}

// --- P2P plan nodes -------------------------------------------------------

TEST(ShardPlan, ContainsP2pNodesAndValidates) {
  sched::ServeJob sj = sched::make_serve_job(stencil_large(), 0);
  const auto slices = core::shard_pipeline_specs(sj.job.spec, {1.0, 1.0});
  Machine m(2);
  core::Pipeline recv_side(*m.devices[0], slices[0].spec);
  core::Pipeline send_side(*m.devices[1], slices[1].spec);

  auto count = [](const core::ExecutionPlan& p, core::PlanOp op) {
    int n = 0;
    for (const auto& node : p.nodes)
      if (node.op == op) ++n;
    return n;
  };
  EXPECT_GT(count(recv_side.execution_plan(), core::PlanOp::P2pRecv), 0);
  EXPECT_EQ(count(recv_side.execution_plan(), core::PlanOp::P2pSend), 0);
  EXPECT_GT(count(send_side.execution_plan(), core::PlanOp::P2pSend), 0);
  EXPECT_EQ(count(send_side.execution_plan(), core::PlanOp::P2pRecv), 0);
  EXPECT_NO_THROW(recv_side.execution_plan().validate());
  EXPECT_NO_THROW(send_side.execution_plan().validate());

  // Peer fields name the other shard.
  for (const auto& n : send_side.execution_plan().nodes) {
    if (n.op == core::PlanOp::P2pSend) {
      EXPECT_EQ(n.peer, 0);
    }
  }
  for (const auto& n : recv_side.execution_plan().nodes) {
    if (n.op == core::PlanOp::P2pRecv) {
      EXPECT_EQ(n.peer, 1);
    }
  }

  // Both flavours show up in the DOT rendering.
  std::ostringstream dot;
  send_side.execution_plan().to_dot(dot);
  EXPECT_NE(dot.str().find("p2p-send"), std::string::npos);
  std::ostringstream dot2;
  recv_side.execution_plan().to_dot(dot2);
  EXPECT_NE(dot2.str().find("p2p-recv"), std::string::npos);
}

TEST(ShardPlan, P2pSendIsOrderedAgainstHaloWrites) {
  sched::ServeJob sj = sched::make_serve_job(stencil_large(), 0);
  const auto slices = core::shard_pipeline_specs(sj.job.spec, {1.0, 1.0});
  Machine m(1);
  core::Pipeline send_side(*m.devices[0], slices[1].spec);
  core::ExecutionPlan bad = send_side.execution_plan();
  ASSERT_NO_THROW(bad.validate());
  // De-order a P2pSend from the copies that populate its halo slots: drop
  // its dependency edges and move it off its stream (same-queue order would
  // otherwise still protect it). Static validation must catch the RAW.
  bool mutated = false;
  for (auto& n : bad.nodes) {
    if (n.op != core::PlanOp::P2pSend) continue;
    n.deps.clear();
    n.stream = (n.stream + 1) % bad.num_streams;
    mutated = true;
    break;
  }
  ASSERT_TRUE(mutated);
  EXPECT_THROW(bad.validate(), gpu::HazardError);
}

// --- Functional sharded execution ----------------------------------------

TEST(ShardRun, MatchesSoloBitExactWithZeroHostBounce) {
  // Solo reference on a fresh device (same deterministic host data).
  sched::ServeJob solo = sched::make_serve_job(stencil_large(), 0);
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Functional);
  core::Pipeline ref(g, solo.job.spec);
  ref.run(solo.job.kernel);
  ASSERT_TRUE(solo.verify());
  const Bytes solo_h2d = ref.stats().h2d_bytes;

  // Sharded across two devices.
  sched::ServeJob sj = sched::make_serve_job(stencil_large(), 0);
  Machine m(2);
  sched::AdmissionController admission(m.devices, 0);
  sched::ShardRun run(sj.job, m.devices, admission, {});
  drive(run, {0, 1});

  EXPECT_TRUE(sj.verify());
  EXPECT_EQ(sj.output_checksum(), solo.output_checksum());
  EXPECT_GT(run.p2p_bytes(), 0u) << "halo must travel device-to-device";
  // Zero host bounce: the halo is never re-uploaded from the host, so the
  // sharded run's total H2D traffic equals the solo run's exactly.
  EXPECT_EQ(run.h2d_bytes(), solo_h2d);
  EXPECT_EQ(run.d2h_bytes(), ref.stats().d2h_bytes);
  EXPECT_EQ(run.rounds(), 1);
  // Admission commits were fully released.
  EXPECT_EQ(admission.committed(0), 0u);
  EXPECT_EQ(admission.committed(1), 0u);
}

TEST(ShardRun, MultiRoundReshardIsBitExact) {
  sched::ServeJob solo = sched::make_serve_job(stencil_large(), 0);
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Functional);
  core::Pipeline ref(g, solo.job.spec);
  ref.run(solo.job.kernel);

  sched::ServeJob sj = sched::make_serve_job(stencil_large(), 0);
  Machine m(2);
  sched::AdmissionController admission(m.devices, 0);
  sched::ShardRunOptions opts;
  opts.reshard_interval = sj.job.spec.iterations() / 3;
  sched::ShardRun run(sj.job, m.devices, admission, opts);

  // Rounds alternate between both devices and one device — an elastic
  // membership change at every boundary.
  int round = 0;
  while (!run.finished()) {
    const std::vector<int> devs =
        round % 2 == 0 ? std::vector<int>{0, 1} : std::vector<int>{1};
    ASSERT_TRUE(run.start_round(devs, std::vector<double>(devs.size(), 1.0)));
    run.finish_round();
    ++round;
  }
  EXPECT_GE(run.rounds(), 3);
  EXPECT_TRUE(sj.verify());
  EXPECT_EQ(sj.output_checksum(), solo.output_checksum());
  // Rounds are sequential, so there is no P2P across a round boundary: each
  // round after the first re-uploads exactly the boundary overhang from the
  // host. Within a round, halos still travel device-to-device only.
  Bytes overhang_bytes = 0;
  for (const core::ArraySpec& a : sj.job.spec.arrays) {
    const std::int64_t ov = a.split.window - a.split.start.scale;
    if (!a.split.window_fn && ov > 0)
      overhang_bytes += static_cast<Bytes>(ov) * core::layout::unit_bytes(a);
  }
  EXPECT_EQ(run.h2d_bytes(), ref.stats().h2d_bytes +
                                 static_cast<Bytes>(run.rounds() - 1) * overhang_bytes);
}

// --- Scheduler integration -----------------------------------------------

sched::SchedulerOptions shard_opts() {
  sched::SchedulerOptions o;
  o.shard_threshold = 1;  // everything shardable shards
  return o;
}

struct SchedRun {
  sched::ScheduleReport report;
  std::vector<double> checksums;
};

SchedRun run_sharded_mix(const std::vector<sched::JobMixLine>& mix,
                         sched::SchedulerOptions opts, int num_devices,
                         telemetry::FlightRecorder* rec = nullptr) {
  Machine m(num_devices);
  opts.recorder = rec;
  sched::Scheduler s(m.devices, opts);
  std::vector<sched::ServeJob> jobs;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    jobs.push_back(sched::make_serve_job(mix[i], static_cast<int>(i)));
    s.submit(jobs.back().job);
  }
  SchedRun r;
  r.report = s.run();
  for (const auto& j : jobs) {
    EXPECT_TRUE(j.verify()) << j.job.name;
    r.checksums.push_back(j.output_checksum());
  }
  return r;
}

TEST(SchedulerShard, ShardedBeatsSoloOnOneBigJob) {
  const std::vector<sched::JobMixLine> mix = {stencil_large()};
  sched::SchedulerOptions solo;  // threshold 0: sharding off
  const SchedRun a = run_sharded_mix(mix, solo, 2);
  const SchedRun b = run_sharded_mix(mix, shard_opts(), 2);
  ASSERT_EQ(a.report.completed, 1);
  ASSERT_EQ(b.report.completed, 1);
  EXPECT_EQ(a.checksums, b.checksums);
  EXPECT_LT(b.report.makespan, a.report.makespan)
      << "two devices splitting one job must beat one device";
}

TEST(SchedulerShard, DeviceLeaveReshardsDeterministically) {
  const std::vector<sched::JobMixLine> mix = {stencil_large()};
  sched::SchedulerOptions opts = shard_opts();
  sched::ServeJob probe = sched::make_serve_job(mix[0], 0);
  opts.reshard_interval = probe.job.spec.iterations() / 4;

  // Unperturbed reference.
  const SchedRun ref = run_sharded_mix(mix, opts, 2);
  ASSERT_EQ(ref.report.completed, 1);

  // Device 1 leaves mid-run: pick a time inside the job's service window so
  // at least one round boundary sees the smaller device set.
  const sched::JobRecord& r = ref.report.jobs[0];
  sched::DeviceEvent leave;
  leave.device = 1;
  leave.time = r.start + (r.finish - r.start) * 0.4;
  leave.join = false;
  opts.device_events = {leave};

  telemetry::FlightRecorder rec;
  const SchedRun gone = run_sharded_mix(mix, opts, 2, &rec);
  ASSERT_EQ(gone.report.completed, 1);
  // Bit-identical output despite the reshard...
  EXPECT_EQ(gone.checksums, ref.checksums);
  // ...and the reshard actually happened (and was recorded).
  bool saw_reshard = false;
  for (const auto& ev : rec.events())
    if (ev.kind == telemetry::FlightEventKind::Reshard) saw_reshard = true;
  EXPECT_TRUE(saw_reshard);

  // Run-twice determinism of the perturbed scenario.
  const SchedRun again = run_sharded_mix(mix, opts, 2);
  EXPECT_EQ(again.checksums, gone.checksums);
  EXPECT_EQ(again.report.makespan, gone.report.makespan);
}

TEST(SchedulerShard, MixedTenantsStayCorrectAndDeterministic) {
  const std::vector<sched::JobMixLine> mix = sched::default_job_mix(6);
  sched::SchedulerOptions opts = shard_opts();
  opts.reshard_interval = 64;
  const SchedRun a = run_sharded_mix(mix, opts, 2);
  const SchedRun b = run_sharded_mix(mix, opts, 2);
  EXPECT_EQ(a.report.completed + a.report.rejected, static_cast<int>(mix.size()));
  EXPECT_EQ(a.checksums, b.checksums);
  EXPECT_EQ(a.report.makespan, b.report.makespan);
}

TEST(SchedulerShard, FlightEventsAndMetrics) {
  const std::vector<sched::JobMixLine> mix = {stencil_large()};
  telemetry::FlightRecorder rec;
  Machine m(2);
  sched::SchedulerOptions opts = shard_opts();
  opts.recorder = &rec;
  sched::Scheduler s(m.devices, opts);
  sched::ServeJob sj = sched::make_serve_job(mix[0], 0);
  s.submit(sj.job);
  s.run();

  bool saw_shard = false, saw_p2p = false;
  for (const auto& ev : rec.events()) {
    if (ev.kind == telemetry::FlightEventKind::Shard) {
      saw_shard = true;
      EXPECT_EQ(ev.a, 0b11) << "both devices in the shard mask";
      EXPECT_GT(ev.b, 0) << "halo bytes payload";
    }
    if (ev.kind == telemetry::FlightEventKind::P2pXfer) {
      saw_p2p = true;
      EXPECT_GT(ev.a, 0);
      EXPECT_EQ(ev.b, 1) << "halo flows from shard 1 (device 1)";
      EXPECT_EQ(ev.device, 0);
    }
  }
  EXPECT_TRUE(saw_shard);
  EXPECT_TRUE(saw_p2p);

  telemetry::Registry reg;
  s.collect_metrics(reg);
  EXPECT_EQ(reg.counter("sched.sharded_jobs").value(), 1);
  EXPECT_GE(reg.counter("sched.shard_rounds").value(), 1);
  EXPECT_GT(reg.counter("sched.p2p_halo_bytes").value(), 0);
}

// --- Exporter schema (golden bytes) ---------------------------------------

TEST(ShardExport, JsonlSchemaForNewKinds) {
  telemetry::FlightRecorder rec;
  telemetry::FlightEvent ev;
  ev.trace_id = 7;
  ev.job = 7;
  ev.device = 0;
  ev.time = 1.0;
  ev.kind = telemetry::FlightEventKind::Shard;
  ev.a = 3;     // device mask
  ev.b = 4096;  // halo bytes
  rec.record(ev);
  ev.time = 2.0;
  ev.kind = telemetry::FlightEventKind::Reshard;
  ev.a = 1;    // new mask
  ev.b = 128;  // remaining iterations
  rec.record(ev);
  ev.time = 3.0;
  ev.kind = telemetry::FlightEventKind::P2pXfer;
  ev.a = 2048;  // bytes
  ev.b = 1;     // source device
  rec.record(ev);

  std::ostringstream os;
  telemetry::export_events_jsonl(os, rec);
  EXPECT_EQ(os.str(),
            "{\"t\":1,\"event\":\"shard\",\"trace\":7,\"job\":7,\"dev\":0,"
            "\"devices\":3,\"halo_bytes\":4096}\n"
            "{\"t\":2,\"event\":\"reshard\",\"trace\":7,\"job\":7,\"dev\":0,"
            "\"devices\":1,\"remaining\":128}\n"
            "{\"t\":3,\"event\":\"p2p-xfer\",\"trace\":7,\"job\":7,\"dev\":0,"
            "\"bytes\":2048,\"src\":1}\n");
}

}  // namespace
}  // namespace gpupipe
