// Unit and failure-injection tests for the hazard tracker.
#include <gtest/gtest.h>

#include "gpu/device_profile.hpp"
#include "gpu/gpu.hpp"
#include "gpu/hazard.hpp"

namespace gpupipe::gpu {
namespace {

std::byte* at(std::uintptr_t addr) { return reinterpret_cast<std::byte*>(addr); }

TEST(RangesOverlap, ContiguousRanges) {
  EXPECT_TRUE(ranges_overlap({at(100), 50}, {at(120), 10}));
  EXPECT_TRUE(ranges_overlap({at(100), 50}, {at(149), 10}));
  EXPECT_FALSE(ranges_overlap({at(100), 50}, {at(150), 10}));
  EXPECT_FALSE(ranges_overlap({at(100), 50}, {at(50), 50}));
  EXPECT_FALSE(ranges_overlap({at(100), 0}, {at(100), 10}));
}

TEST(RangesOverlap, StridedVsContiguous) {
  // Strided: 4 rows of 8 bytes, stride 32: [100,108) [132,140) [164,172) [196,204)
  const MemRange strided{at(100), 8, 32, 4};
  EXPECT_TRUE(ranges_overlap(strided, {at(104), 2}));
  EXPECT_FALSE(ranges_overlap(strided, {at(108), 24}));  // exactly the gap
  EXPECT_TRUE(ranges_overlap(strided, {at(108), 25}));   // touches row 1
  EXPECT_TRUE(ranges_overlap(strided, {at(196), 1}));
  EXPECT_FALSE(ranges_overlap(strided, {at(204), 100}));  // after last row
  EXPECT_FALSE(ranges_overlap(strided, {at(0), 100}));
  EXPECT_TRUE(ranges_overlap({at(0), 150}, strided));  // symmetric
}

TEST(RangesOverlap, StridedVsStrided) {
  const MemRange a{at(100), 8, 32, 4};
  // Same geometry, offset by 16: rows at 116,148,... never touch a's rows.
  EXPECT_FALSE(ranges_overlap(a, MemRange{at(116), 8, 32, 4}));
  // Offset by 4: rows at 104..112 overlap a's rows.
  EXPECT_TRUE(ranges_overlap(a, MemRange{at(104), 8, 32, 4}));
  // Different stride eventually collides: rows at 116, 140, 164...
  EXPECT_TRUE(ranges_overlap(a, MemRange{at(116), 8, 24, 4}));
}

TEST(HazardTracker, DetectsReadAfterWrite) {
  HazardTracker t;
  MemEffects write;
  write.writes.push_back({at(100), 50});
  t.begin_op(write, 0.0, 1.0, "writer");
  MemEffects read;
  read.reads.push_back({at(120), 10});
  // Read starts before the write completes.
  EXPECT_THROW(t.begin_op(read, 0.5, 0.6, "reader"), HazardError);
}

TEST(HazardTracker, AcceptsOrderedReadAfterWrite) {
  HazardTracker t;
  MemEffects write;
  write.writes.push_back({at(100), 50});
  t.begin_op(write, 0.0, 1.0, "writer");
  MemEffects read;
  read.reads.push_back({at(120), 10});
  EXPECT_NO_THROW(t.begin_op(read, 1.0, 1.5, "reader"));  // starts at completion
}

TEST(HazardTracker, DetectsWriteAfterRead) {
  HazardTracker t;
  MemEffects read;
  read.reads.push_back({at(100), 50});
  t.begin_op(read, 0.0, 1.0, "reader");
  MemEffects write;
  write.writes.push_back({at(100), 10});
  EXPECT_THROW(t.begin_op(write, 0.5, 0.7, "writer"), HazardError);
}

TEST(HazardTracker, DetectsWriteAfterWrite) {
  HazardTracker t;
  MemEffects w1;
  w1.writes.push_back({at(100), 50});
  t.begin_op(w1, 0.0, 1.0, "w1");
  MemEffects w2;
  w2.writes.push_back({at(100), 50});
  EXPECT_THROW(t.begin_op(w2, 0.5, 1.5, "w2"), HazardError);
}

TEST(HazardTracker, ConcurrentReadsAreFine) {
  HazardTracker t;
  MemEffects r1, r2;
  r1.reads.push_back({at(100), 50});
  r2.reads.push_back({at(100), 50});
  t.begin_op(r1, 0.0, 1.0, "r1");
  EXPECT_NO_THROW(t.begin_op(r2, 0.5, 1.5, "r2"));
}

TEST(HazardTracker, DisjointRangesAreFine) {
  HazardTracker t;
  MemEffects w1, w2;
  w1.writes.push_back({at(100), 50});
  w2.writes.push_back({at(150), 50});
  t.begin_op(w1, 0.0, 1.0, "w1");
  EXPECT_NO_THROW(t.begin_op(w2, 0.0, 1.0, "w2"));
}

TEST(HazardTracker, PruneDropsCompletedRecords) {
  HazardTracker t;
  MemEffects w;
  w.writes.push_back({at(100), 50});
  t.begin_op(w, 0.0, 1.0, "w");
  EXPECT_EQ(t.live_records(), 1u);
  t.prune(2.0);
  EXPECT_EQ(t.live_records(), 0u);
}

TEST(HazardTracker, DisabledTrackerIgnoresEverything) {
  if (HazardTracker::force_enabled())
    GTEST_SKIP() << "GPUPIPE_FORCE_HAZARDS overrides set_enabled(false)";
  HazardTracker t;
  t.set_enabled(false);
  MemEffects w1, w2;
  w1.writes.push_back({at(100), 50});
  w2.writes.push_back({at(100), 50});
  t.begin_op(w1, 0.0, 1.0, "w1");
  EXPECT_NO_THROW(t.begin_op(w2, 0.5, 1.5, "w2"));
  EXPECT_EQ(t.live_records(), 0u);
}

// --- Failure injection on the full runtime ---

DeviceProfile profile() {
  auto p = nvidia_k40m();
  return p;
}

TEST(HazardIntegration, MissingEventDependencyIsCaught) {
  // A kernel reading a device buffer while its H2D copy is still in flight
  // on another stream (the classic forgotten cudaStreamWaitEvent) must trip
  // the tracker the moment the kernel starts.
  Gpu g(profile());
  std::byte* host = g.host_alloc(8 * MiB);
  std::byte* dev = g.device_malloc(8 * MiB);
  Stream& copy_stream = g.create_stream();
  Stream& kernel_stream = g.create_stream();

  g.memcpy_h2d_async(dev, host, 8 * MiB, copy_stream);
  KernelDesc k;
  k.name = "premature-reader";
  k.flops = 1e3;  // short kernel: starts long before the copy finishes
  k.effects.reads.push_back({dev, 8 * MiB});
  g.launch(kernel_stream, std::move(k));
  EXPECT_THROW(g.synchronize(), HazardError);
}

TEST(HazardIntegration, EventDependencyFixesTheRace) {
  Gpu g(profile());
  std::byte* host = g.host_alloc(8 * MiB);
  std::byte* dev = g.device_malloc(8 * MiB);
  Stream& copy_stream = g.create_stream();
  Stream& kernel_stream = g.create_stream();

  g.memcpy_h2d_async(dev, host, 8 * MiB, copy_stream);
  EventPtr ev = g.record_event(copy_stream);
  g.wait_event(kernel_stream, ev);
  KernelDesc k;
  k.flops = 1e3;
  k.effects.reads.push_back({dev, 8 * MiB});
  g.launch(kernel_stream, std::move(k));
  EXPECT_NO_THROW(g.synchronize());
}

TEST(HazardIntegration, PrematureBufferReuseIsCaught) {
  // Overwriting a device buffer while a long kernel still reads it.
  Gpu g(profile());
  std::byte* host = g.host_alloc(8 * MiB);
  std::byte* dev = g.device_malloc(8 * MiB);
  Stream& kernel_stream = g.create_stream();
  Stream& copy_stream = g.create_stream();

  KernelDesc k;
  k.name = "long-reader";
  k.fixed_duration = 1.0;  // very long
  k.effects.reads.push_back({dev, 8 * MiB});
  g.launch(kernel_stream, std::move(k));
  g.memcpy_h2d_async(dev, host, 8 * MiB, copy_stream);  // reuses too early
  EXPECT_THROW(g.synchronize(), HazardError);
}

}  // namespace
}  // namespace gpupipe::gpu
