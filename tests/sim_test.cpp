// Unit tests for the discrete-event core: event queue ordering, task
// dependencies, engine capacity, and deadlock detection.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/trace.hpp"

namespace gpupipe::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, SimultaneousEventsRunInInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sim.schedule(1.0, [&, i] { order.push_back(i); });
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule(1.0, [] {});
  sim.run_all();
  EXPECT_THROW(sim.schedule(0.5, [] {}), Error);
}

TEST(Simulator, RunUntilPredicateStopsEarly) {
  Simulator sim;
  bool flag = false;
  sim.schedule(1.0, [&] { flag = true; });
  sim.schedule(5.0, [] {});
  sim.run_until([&] { return flag; });
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
  EXPECT_FALSE(sim.idle());
}

TEST(Simulator, RunUntilUnreachablePredicateThrowsDeadlock) {
  Simulator sim;
  sim.schedule(1.0, [] {});
  EXPECT_THROW(sim.run_until([] { return false; }), Error);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sim.schedule_after(1.0, chain);
  };
  sim.schedule(0.0, chain);
  sim.run_all();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(Simulator, RunUntilTimeAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.run_until_time(7.5);
  EXPECT_DOUBLE_EQ(sim.now(), 7.5);
}

TEST(Task, RunsForItsDurationAndExecutesPayload) {
  Simulator sim;
  Engine eng(sim, "e", 1);
  bool ran = false;
  auto t = Task::create(eng, 2.5, "t", [&] { ran = true; });
  t->submit(0.0);
  sim.run_all();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(t->done());
  EXPECT_DOUBLE_EQ(t->start_time(), 0.0);
  EXPECT_DOUBLE_EQ(t->end_time(), 2.5);
}

TEST(Task, ReleaseTimeDelaysStart) {
  Simulator sim;
  Engine eng(sim, "e", 1);
  auto t = Task::create(eng, 1.0, "t");
  t->submit(3.0);
  sim.run_all();
  EXPECT_DOUBLE_EQ(t->start_time(), 3.0);
  EXPECT_DOUBLE_EQ(t->end_time(), 4.0);
}

TEST(Task, DependencySequencesAcrossEngines) {
  Simulator sim;
  Engine a(sim, "a", 1);
  Engine b(sim, "b", 1);
  auto t1 = Task::create(a, 2.0, "t1");
  auto t2 = Task::create(b, 1.0, "t2");
  t2->depends_on(t1);
  t2->submit(0.0);
  t1->submit(0.0);
  sim.run_all();
  EXPECT_DOUBLE_EQ(t2->start_time(), 2.0);
  EXPECT_DOUBLE_EQ(t2->end_time(), 3.0);
}

TEST(Task, DependencyOnCompletedTaskIsNoOp) {
  Simulator sim;
  Engine eng(sim, "e", 1);
  auto t1 = Task::create(eng, 1.0, "t1");
  t1->submit(0.0);
  sim.run_all();
  auto t2 = Task::create(eng, 1.0, "t2");
  t2->depends_on(t1);
  t2->submit(sim.now());
  sim.run_all();
  EXPECT_DOUBLE_EQ(t2->end_time(), 2.0);
}

TEST(Task, CapacityOneEngineSerialises) {
  Simulator sim;
  Engine eng(sim, "e", 1);
  auto t1 = Task::create(eng, 2.0, "t1");
  auto t2 = Task::create(eng, 2.0, "t2");
  t1->submit(0.0);
  t2->submit(0.0);
  sim.run_all();
  EXPECT_DOUBLE_EQ(t1->end_time(), 2.0);
  EXPECT_DOUBLE_EQ(t2->start_time(), 2.0);
  EXPECT_DOUBLE_EQ(t2->end_time(), 4.0);
}

TEST(Task, CapacityTwoEngineRunsTwoConcurrently) {
  Simulator sim;
  Engine eng(sim, "e", 2);
  auto t1 = Task::create(eng, 2.0, "t1");
  auto t2 = Task::create(eng, 2.0, "t2");
  auto t3 = Task::create(eng, 2.0, "t3");
  t1->submit(0.0);
  t2->submit(0.0);
  t3->submit(0.0);
  sim.run_all();
  EXPECT_DOUBLE_EQ(t1->end_time(), 2.0);
  EXPECT_DOUBLE_EQ(t2->end_time(), 2.0);
  EXPECT_DOUBLE_EQ(t3->start_time(), 2.0);
}

TEST(Task, FifoOrderWithinEngine) {
  Simulator sim;
  Engine eng(sim, "e", 1);
  std::vector<std::string> order;
  std::vector<TaskPtr> tasks;
  for (int i = 0; i < 4; ++i) {
    auto t = Task::create(eng, 1.0, "t" + std::to_string(i));
    t->on_complete([&, i] { order.push_back("t" + std::to_string(i)); });
    tasks.push_back(t);
  }
  for (auto& t : tasks) t->submit(0.0);
  sim.run_all();
  EXPECT_EQ(order, (std::vector<std::string>{"t0", "t1", "t2", "t3"}));
}

TEST(Task, OnCompleteAfterDoneRunsImmediately) {
  Simulator sim;
  Engine eng(sim, "e", 1);
  auto t = Task::create(eng, 1.0, "t");
  t->submit(0.0);
  sim.run_all();
  bool called = false;
  t->on_complete([&] { called = true; });
  EXPECT_TRUE(called);
}

TEST(Task, OnStartFiresAtServiceStart) {
  Simulator sim;
  Engine eng(sim, "e", 1);
  auto blocker = Task::create(eng, 3.0, "blocker");
  auto t = Task::create(eng, 1.0, "t");
  SimTime started_at = -1.0;
  t->on_start([&] { started_at = sim.now(); });
  blocker->submit(0.0);
  t->submit(0.0);
  sim.run_all();
  EXPECT_DOUBLE_EQ(started_at, 3.0);
}

TEST(Task, DoubleSubmitThrows) {
  Simulator sim;
  Engine eng(sim, "e", 1);
  auto t = Task::create(eng, 1.0, "t");
  t->submit(0.0);
  EXPECT_THROW(t->submit(0.0), Error);
}

TEST(Task, NegativeDurationThrows) {
  Simulator sim;
  Engine eng(sim, "e", 1);
  EXPECT_THROW(Task::create(eng, -1.0, "t"), Error);
}

TEST(Engine, BusyTimeAccumulates) {
  Simulator sim;
  Engine eng(sim, "e", 1);
  auto t1 = Task::create(eng, 2.0, "t1");
  auto t2 = Task::create(eng, 3.0, "t2");
  t1->submit(0.0);
  t2->submit(0.0);
  sim.run_all();
  EXPECT_DOUBLE_EQ(eng.busy_time(), 5.0);
}

TEST(Trace, AggregatesByKindAndComputesOccupancy) {
  Trace trace;
  trace.record({SpanKind::H2D, "s0", "a", 0.0, 2.0, 100});
  trace.record({SpanKind::H2D, "s1", "b", 1.0, 3.0, 100});
  trace.record({SpanKind::Kernel, "s0", "k", 2.0, 5.0, 0});
  auto by_kind = trace.time_by_kind();
  EXPECT_DOUBLE_EQ(by_kind[SpanKind::H2D], 4.0);
  EXPECT_DOUBLE_EQ(by_kind[SpanKind::Kernel], 3.0);
  // The two H2D spans overlap during [1,2): union is [0,3) = 3s.
  EXPECT_DOUBLE_EQ(trace.occupancy(SpanKind::H2D), 3.0);
}

TEST(Trace, DisabledTraceRecordsNothing) {
  Trace trace;
  trace.set_enabled(false);
  trace.record({SpanKind::H2D, "s0", "a", 0.0, 2.0, 100});
  EXPECT_TRUE(trace.spans().empty());
}

TEST(Trace, ChromeJsonExportIsWellFormed) {
  Trace trace;
  trace.record({SpanKind::H2D, "pipe0", "h2d[1024B]", 0.0, 0.001, 1024});
  trace.record({SpanKind::Kernel, "pipe1", "stencil \"k\"", 0.001, 0.003, 0});
  std::ostringstream os;
  trace.dump_chrome_json(os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"HtoD\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"kernel\""), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":1024"), std::string::npos);
  // Quotes in labels are escaped.
  EXPECT_NE(json.find("stencil \\\"k\\\""), std::string::npos);
  // Both lanes got thread-name metadata.
  EXPECT_NE(json.find("pipe0"), std::string::npos);
  EXPECT_NE(json.find("pipe1"), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(Trace, ChromeJsonGoldenOutput) {
  // Byte-exact golden check: control characters escape as \u00XX, bytes and
  // plan-node ids land in args, metadata precedes spans. Times are chosen so
  // microsecond values print as small integers.
  Trace trace;
  trace.record({SpanKind::H2D, "s0", "up", 0.0, 1e-6, 10, 3});
  trace.record({SpanKind::Kernel, "s0", "k\x01", 1e-6, 3e-6, 0, -1});
  std::ostringstream os;
  trace.dump_chrome_json(os);
  const std::string expected =
      "{\"traceEvents\":["
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"s0\"}}"
      ",{\"name\":\"up\",\"cat\":\"HtoD\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
      "\"ts\":0,\"dur\":1,\"args\":{\"bytes\":10,\"plan_node\":3}}"
      ",{\"name\":\"k\\u0001\",\"cat\":\"kernel\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
      "\"ts\":1,\"dur\":2}"
      "]}";
  EXPECT_EQ(os.str(), expected);
}

TEST(Trace, SpanCapacityKeepsNewestAndCountsDrops) {
  Trace trace;
  trace.set_span_capacity(3);
  for (int i = 0; i < 5; ++i)
    trace.record({SpanKind::Kernel, "s0", "k" + std::to_string(i),
                  static_cast<SimTime>(i), static_cast<SimTime>(i) + 1.0, 0});
  EXPECT_EQ(trace.dropped_spans(), 2u);
  ASSERT_EQ(trace.spans().size(), 3u);
  // Newest three survive, oldest first.
  EXPECT_EQ(trace.spans()[0].label, "k2");
  EXPECT_EQ(trace.spans()[1].label, "k3");
  EXPECT_EQ(trace.spans()[2].label, "k4");
  trace.clear();
  EXPECT_EQ(trace.dropped_spans(), 0u);
  EXPECT_TRUE(trace.spans().empty());
}

TEST(Trace, ShrinkingCapacityEvictsOldest) {
  Trace trace;
  for (int i = 0; i < 5; ++i)
    trace.record({SpanKind::Kernel, "s0", "k" + std::to_string(i),
                  static_cast<SimTime>(i), static_cast<SimTime>(i) + 1.0, 0});
  trace.set_span_capacity(2);
  EXPECT_EQ(trace.dropped_spans(), 3u);
  ASSERT_EQ(trace.spans().size(), 2u);
  EXPECT_EQ(trace.spans()[0].label, "k3");
  EXPECT_EQ(trace.spans()[1].label, "k4");
  // Default capacity is unbounded.
  EXPECT_EQ(Trace{}.span_capacity(), 0u);
}

TEST(Trace, OccupancyIgnoresZeroLengthSpans) {
  Trace trace;
  trace.record({SpanKind::Kernel, "s0", "marker", 1.0, 1.0, 0});
  EXPECT_DOUBLE_EQ(trace.occupancy(SpanKind::Kernel), 0.0);
}

TEST(Trace, OccupancyMergesFullyNestedIntervals) {
  Trace trace;
  trace.record({SpanKind::Kernel, "s0", "outer", 0.0, 10.0, 0});
  trace.record({SpanKind::Kernel, "s1", "inner", 2.0, 3.0, 0});
  EXPECT_DOUBLE_EQ(trace.occupancy(SpanKind::Kernel), 10.0);
}

TEST(Trace, OccupancyHandlesIdenticalStarts) {
  Trace trace;
  trace.record({SpanKind::H2D, "s0", "a", 0.0, 2.0, 1});
  trace.record({SpanKind::H2D, "s1", "b", 0.0, 5.0, 1});
  EXPECT_DOUBLE_EQ(trace.occupancy(SpanKind::H2D), 5.0);
}

TEST(Trace, OccupancyUnionSpansMultipleKinds) {
  Trace trace;
  trace.record({SpanKind::H2D, "s0", "up", 0.0, 2.0, 1});
  trace.record({SpanKind::Kernel, "s0", "k", 1.0, 3.0, 0});
  trace.record({SpanKind::D2H, "s0", "down", 5.0, 6.0, 1});
  EXPECT_DOUBLE_EQ(trace.occupancy_union({SpanKind::H2D, SpanKind::Kernel}), 3.0);
  EXPECT_DOUBLE_EQ(
      trace.occupancy_union({SpanKind::H2D, SpanKind::D2H, SpanKind::Kernel}), 4.0);
}

TEST(Trace, OverlapEfficiencyBounds) {
  // Fully serial timeline: no realised overlap.
  Trace serial;
  serial.record({SpanKind::H2D, "s0", "up", 0.0, 1.0, 1});
  serial.record({SpanKind::Kernel, "s0", "k", 1.0, 3.0, 0});
  EXPECT_DOUBLE_EQ(overlap_efficiency(serial), 0.0);

  // Transfer fully hidden behind the kernel: perfect overlap.
  Trace perfect;
  perfect.record({SpanKind::H2D, "s0", "up", 0.0, 1.0, 1});
  perfect.record({SpanKind::Kernel, "s1", "k", 0.0, 2.0, 0});
  EXPECT_DOUBLE_EQ(overlap_efficiency(perfect), 1.0);

  // Only one kind ran: nothing to overlap, defined as 0.
  Trace lone;
  lone.record({SpanKind::Kernel, "s0", "k", 0.0, 2.0, 0});
  EXPECT_DOUBLE_EQ(overlap_efficiency(lone), 0.0);
}

TEST(Trace, PlanNodeStampsDefaultToMinusOne) {
  Trace trace;
  EXPECT_EQ(trace.plan_node(), -1);
  trace.set_plan_node(7);
  EXPECT_EQ(trace.plan_node(), 7);
  trace.record({SpanKind::Kernel, "s0", "k", 0.0, 1.0, 0, trace.plan_node()});
  EXPECT_EQ(trace.spans().back().node, 7);
}

}  // namespace
}  // namespace gpupipe::sim

