// Unit tests for the discrete-event core: event queue ordering, task
// dependencies, engine capacity, and deadlock detection.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/trace.hpp"

namespace gpupipe::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, SimultaneousEventsRunInInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sim.schedule(1.0, [&, i] { order.push_back(i); });
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule(1.0, [] {});
  sim.run_all();
  EXPECT_THROW(sim.schedule(0.5, [] {}), Error);
}

TEST(Simulator, RunUntilPredicateStopsEarly) {
  Simulator sim;
  bool flag = false;
  sim.schedule(1.0, [&] { flag = true; });
  sim.schedule(5.0, [] {});
  sim.run_until([&] { return flag; });
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
  EXPECT_FALSE(sim.idle());
}

TEST(Simulator, RunUntilUnreachablePredicateThrowsDeadlock) {
  Simulator sim;
  sim.schedule(1.0, [] {});
  EXPECT_THROW(sim.run_until([] { return false; }), Error);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sim.schedule_after(1.0, chain);
  };
  sim.schedule(0.0, chain);
  sim.run_all();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(Simulator, RunUntilTimeAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.run_until_time(7.5);
  EXPECT_DOUBLE_EQ(sim.now(), 7.5);
}

TEST(Task, RunsForItsDurationAndExecutesPayload) {
  Simulator sim;
  Engine eng(sim, "e", 1);
  bool ran = false;
  auto t = Task::create(eng, 2.5, "t", [&] { ran = true; });
  t->submit(0.0);
  sim.run_all();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(t->done());
  EXPECT_DOUBLE_EQ(t->start_time(), 0.0);
  EXPECT_DOUBLE_EQ(t->end_time(), 2.5);
}

TEST(Task, ReleaseTimeDelaysStart) {
  Simulator sim;
  Engine eng(sim, "e", 1);
  auto t = Task::create(eng, 1.0, "t");
  t->submit(3.0);
  sim.run_all();
  EXPECT_DOUBLE_EQ(t->start_time(), 3.0);
  EXPECT_DOUBLE_EQ(t->end_time(), 4.0);
}

TEST(Task, DependencySequencesAcrossEngines) {
  Simulator sim;
  Engine a(sim, "a", 1);
  Engine b(sim, "b", 1);
  auto t1 = Task::create(a, 2.0, "t1");
  auto t2 = Task::create(b, 1.0, "t2");
  t2->depends_on(t1);
  t2->submit(0.0);
  t1->submit(0.0);
  sim.run_all();
  EXPECT_DOUBLE_EQ(t2->start_time(), 2.0);
  EXPECT_DOUBLE_EQ(t2->end_time(), 3.0);
}

TEST(Task, DependencyOnCompletedTaskIsNoOp) {
  Simulator sim;
  Engine eng(sim, "e", 1);
  auto t1 = Task::create(eng, 1.0, "t1");
  t1->submit(0.0);
  sim.run_all();
  auto t2 = Task::create(eng, 1.0, "t2");
  t2->depends_on(t1);
  t2->submit(sim.now());
  sim.run_all();
  EXPECT_DOUBLE_EQ(t2->end_time(), 2.0);
}

TEST(Task, CapacityOneEngineSerialises) {
  Simulator sim;
  Engine eng(sim, "e", 1);
  auto t1 = Task::create(eng, 2.0, "t1");
  auto t2 = Task::create(eng, 2.0, "t2");
  t1->submit(0.0);
  t2->submit(0.0);
  sim.run_all();
  EXPECT_DOUBLE_EQ(t1->end_time(), 2.0);
  EXPECT_DOUBLE_EQ(t2->start_time(), 2.0);
  EXPECT_DOUBLE_EQ(t2->end_time(), 4.0);
}

TEST(Task, CapacityTwoEngineRunsTwoConcurrently) {
  Simulator sim;
  Engine eng(sim, "e", 2);
  auto t1 = Task::create(eng, 2.0, "t1");
  auto t2 = Task::create(eng, 2.0, "t2");
  auto t3 = Task::create(eng, 2.0, "t3");
  t1->submit(0.0);
  t2->submit(0.0);
  t3->submit(0.0);
  sim.run_all();
  EXPECT_DOUBLE_EQ(t1->end_time(), 2.0);
  EXPECT_DOUBLE_EQ(t2->end_time(), 2.0);
  EXPECT_DOUBLE_EQ(t3->start_time(), 2.0);
}

TEST(Task, FifoOrderWithinEngine) {
  Simulator sim;
  Engine eng(sim, "e", 1);
  std::vector<std::string> order;
  std::vector<TaskPtr> tasks;
  for (int i = 0; i < 4; ++i) {
    auto t = Task::create(eng, 1.0, "t" + std::to_string(i));
    t->on_complete([&, i] { order.push_back("t" + std::to_string(i)); });
    tasks.push_back(t);
  }
  for (auto& t : tasks) t->submit(0.0);
  sim.run_all();
  EXPECT_EQ(order, (std::vector<std::string>{"t0", "t1", "t2", "t3"}));
}

TEST(Task, OnCompleteAfterDoneRunsImmediately) {
  Simulator sim;
  Engine eng(sim, "e", 1);
  auto t = Task::create(eng, 1.0, "t");
  t->submit(0.0);
  sim.run_all();
  bool called = false;
  t->on_complete([&] { called = true; });
  EXPECT_TRUE(called);
}

TEST(Task, OnStartFiresAtServiceStart) {
  Simulator sim;
  Engine eng(sim, "e", 1);
  auto blocker = Task::create(eng, 3.0, "blocker");
  auto t = Task::create(eng, 1.0, "t");
  SimTime started_at = -1.0;
  t->on_start([&] { started_at = sim.now(); });
  blocker->submit(0.0);
  t->submit(0.0);
  sim.run_all();
  EXPECT_DOUBLE_EQ(started_at, 3.0);
}

TEST(Task, DoubleSubmitThrows) {
  Simulator sim;
  Engine eng(sim, "e", 1);
  auto t = Task::create(eng, 1.0, "t");
  t->submit(0.0);
  EXPECT_THROW(t->submit(0.0), Error);
}

TEST(Task, NegativeDurationThrows) {
  Simulator sim;
  Engine eng(sim, "e", 1);
  EXPECT_THROW(Task::create(eng, -1.0, "t"), Error);
}

TEST(Engine, BusyTimeAccumulates) {
  Simulator sim;
  Engine eng(sim, "e", 1);
  auto t1 = Task::create(eng, 2.0, "t1");
  auto t2 = Task::create(eng, 3.0, "t2");
  t1->submit(0.0);
  t2->submit(0.0);
  sim.run_all();
  EXPECT_DOUBLE_EQ(eng.busy_time(), 5.0);
}

TEST(Trace, AggregatesByKindAndComputesOccupancy) {
  Trace trace;
  trace.record({SpanKind::H2D, "s0", "a", 0.0, 2.0, 100});
  trace.record({SpanKind::H2D, "s1", "b", 1.0, 3.0, 100});
  trace.record({SpanKind::Kernel, "s0", "k", 2.0, 5.0, 0});
  auto by_kind = trace.time_by_kind();
  EXPECT_DOUBLE_EQ(by_kind[SpanKind::H2D], 4.0);
  EXPECT_DOUBLE_EQ(by_kind[SpanKind::Kernel], 3.0);
  // The two H2D spans overlap during [1,2): union is [0,3) = 3s.
  EXPECT_DOUBLE_EQ(trace.occupancy(SpanKind::H2D), 3.0);
}

TEST(Trace, DisabledTraceRecordsNothing) {
  Trace trace;
  trace.set_enabled(false);
  trace.record({SpanKind::H2D, "s0", "a", 0.0, 2.0, 100});
  EXPECT_TRUE(trace.spans().empty());
}

TEST(Trace, ChromeJsonExportIsWellFormed) {
  Trace trace;
  trace.record({SpanKind::H2D, "pipe0", "h2d[1024B]", 0.0, 0.001, 1024});
  trace.record({SpanKind::Kernel, "pipe1", "stencil \"k\"", 0.001, 0.003, 0});
  std::ostringstream os;
  trace.dump_chrome_json(os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"HtoD\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"kernel\""), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":1024"), std::string::npos);
  // Quotes in labels are escaped.
  EXPECT_NE(json.find("stencil \\\"k\\\""), std::string::npos);
  // Both lanes got thread-name metadata.
  EXPECT_NE(json.find("pipe0"), std::string::npos);
  EXPECT_NE(json.find("pipe1"), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

}  // namespace
}  // namespace gpupipe::sim

