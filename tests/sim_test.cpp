// Unit tests for the discrete-event core: event queue ordering, task
// dependencies, engine capacity, and deadlock detection.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/trace.hpp"

namespace gpupipe::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, SimultaneousEventsRunInInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sim.schedule(1.0, [&, i] { order.push_back(i); });
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule(1.0, [] {});
  sim.run_all();
  EXPECT_THROW(sim.schedule(0.5, [] {}), Error);
}

TEST(Simulator, RunUntilPredicateStopsEarly) {
  Simulator sim;
  bool flag = false;
  sim.schedule(1.0, [&] { flag = true; });
  sim.schedule(5.0, [] {});
  sim.run_until([&] { return flag; });
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
  EXPECT_FALSE(sim.idle());
}

TEST(Simulator, RunUntilUnreachablePredicateThrowsDeadlock) {
  Simulator sim;
  sim.schedule(1.0, [] {});
  EXPECT_THROW(sim.run_until([] { return false; }), Error);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sim.schedule_after(1.0, chain);
  };
  sim.schedule(0.0, chain);
  sim.run_all();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(Simulator, RunUntilTimeAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.run_until_time(7.5);
  EXPECT_DOUBLE_EQ(sim.now(), 7.5);
}

TEST(Task, RunsForItsDurationAndExecutesPayload) {
  Simulator sim;
  Engine eng(sim, "e", 1);
  bool ran = false;
  auto t = Task::create(eng, 2.5, "t", [&] { ran = true; });
  t->submit(0.0);
  sim.run_all();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(t->done());
  EXPECT_DOUBLE_EQ(t->start_time(), 0.0);
  EXPECT_DOUBLE_EQ(t->end_time(), 2.5);
}

TEST(Task, ReleaseTimeDelaysStart) {
  Simulator sim;
  Engine eng(sim, "e", 1);
  auto t = Task::create(eng, 1.0, "t");
  t->submit(3.0);
  sim.run_all();
  EXPECT_DOUBLE_EQ(t->start_time(), 3.0);
  EXPECT_DOUBLE_EQ(t->end_time(), 4.0);
}

TEST(Task, DependencySequencesAcrossEngines) {
  Simulator sim;
  Engine a(sim, "a", 1);
  Engine b(sim, "b", 1);
  auto t1 = Task::create(a, 2.0, "t1");
  auto t2 = Task::create(b, 1.0, "t2");
  t2->depends_on(t1);
  t2->submit(0.0);
  t1->submit(0.0);
  sim.run_all();
  EXPECT_DOUBLE_EQ(t2->start_time(), 2.0);
  EXPECT_DOUBLE_EQ(t2->end_time(), 3.0);
}

TEST(Task, DependencyOnCompletedTaskIsNoOp) {
  Simulator sim;
  Engine eng(sim, "e", 1);
  auto t1 = Task::create(eng, 1.0, "t1");
  t1->submit(0.0);
  sim.run_all();
  auto t2 = Task::create(eng, 1.0, "t2");
  t2->depends_on(t1);
  t2->submit(sim.now());
  sim.run_all();
  EXPECT_DOUBLE_EQ(t2->end_time(), 2.0);
}

TEST(Task, CapacityOneEngineSerialises) {
  Simulator sim;
  Engine eng(sim, "e", 1);
  auto t1 = Task::create(eng, 2.0, "t1");
  auto t2 = Task::create(eng, 2.0, "t2");
  t1->submit(0.0);
  t2->submit(0.0);
  sim.run_all();
  EXPECT_DOUBLE_EQ(t1->end_time(), 2.0);
  EXPECT_DOUBLE_EQ(t2->start_time(), 2.0);
  EXPECT_DOUBLE_EQ(t2->end_time(), 4.0);
}

TEST(Task, CapacityTwoEngineRunsTwoConcurrently) {
  Simulator sim;
  Engine eng(sim, "e", 2);
  auto t1 = Task::create(eng, 2.0, "t1");
  auto t2 = Task::create(eng, 2.0, "t2");
  auto t3 = Task::create(eng, 2.0, "t3");
  t1->submit(0.0);
  t2->submit(0.0);
  t3->submit(0.0);
  sim.run_all();
  EXPECT_DOUBLE_EQ(t1->end_time(), 2.0);
  EXPECT_DOUBLE_EQ(t2->end_time(), 2.0);
  EXPECT_DOUBLE_EQ(t3->start_time(), 2.0);
}

TEST(Task, FifoOrderWithinEngine) {
  Simulator sim;
  Engine eng(sim, "e", 1);
  std::vector<std::string> order;
  std::vector<TaskPtr> tasks;
  for (int i = 0; i < 4; ++i) {
    auto t = Task::create(eng, 1.0, "t" + std::to_string(i));
    t->on_complete([&, i] { order.push_back("t" + std::to_string(i)); });
    tasks.push_back(t);
  }
  for (auto& t : tasks) t->submit(0.0);
  sim.run_all();
  EXPECT_EQ(order, (std::vector<std::string>{"t0", "t1", "t2", "t3"}));
}

TEST(Task, OnCompleteAfterDoneRunsImmediately) {
  Simulator sim;
  Engine eng(sim, "e", 1);
  auto t = Task::create(eng, 1.0, "t");
  t->submit(0.0);
  sim.run_all();
  bool called = false;
  t->on_complete([&] { called = true; });
  EXPECT_TRUE(called);
}

TEST(Task, OnStartFiresAtServiceStart) {
  Simulator sim;
  Engine eng(sim, "e", 1);
  auto blocker = Task::create(eng, 3.0, "blocker");
  auto t = Task::create(eng, 1.0, "t");
  SimTime started_at = -1.0;
  t->on_start([&] { started_at = sim.now(); });
  blocker->submit(0.0);
  t->submit(0.0);
  sim.run_all();
  EXPECT_DOUBLE_EQ(started_at, 3.0);
}

TEST(Task, DoubleSubmitThrows) {
  Simulator sim;
  Engine eng(sim, "e", 1);
  auto t = Task::create(eng, 1.0, "t");
  t->submit(0.0);
  EXPECT_THROW(t->submit(0.0), Error);
}

TEST(Task, NegativeDurationThrows) {
  Simulator sim;
  Engine eng(sim, "e", 1);
  EXPECT_THROW(Task::create(eng, -1.0, "t"), Error);
}

TEST(Engine, BusyTimeAccumulates) {
  Simulator sim;
  Engine eng(sim, "e", 1);
  auto t1 = Task::create(eng, 2.0, "t1");
  auto t2 = Task::create(eng, 3.0, "t2");
  t1->submit(0.0);
  t2->submit(0.0);
  sim.run_all();
  EXPECT_DOUBLE_EQ(eng.busy_time(), 5.0);
}

TEST(Trace, AggregatesByKindAndComputesOccupancy) {
  Trace trace;
  trace.record(SpanKind::H2D, "s0", "a", 0.0, 2.0, 100);
  trace.record(SpanKind::H2D, "s1", "b", 1.0, 3.0, 100);
  trace.record(SpanKind::Kernel, "s0", "k", 2.0, 5.0, 0);
  auto by_kind = trace.time_by_kind();
  EXPECT_DOUBLE_EQ(by_kind[SpanKind::H2D], 4.0);
  EXPECT_DOUBLE_EQ(by_kind[SpanKind::Kernel], 3.0);
  // The two H2D spans overlap during [1,2): union is [0,3) = 3s.
  EXPECT_DOUBLE_EQ(trace.occupancy(SpanKind::H2D), 3.0);
}

TEST(Trace, DisabledTraceRecordsNothing) {
  Trace trace;
  trace.set_enabled(false);
  trace.record(SpanKind::H2D, "s0", "a", 0.0, 2.0, 100);
  EXPECT_TRUE(trace.spans().empty());
}

TEST(Trace, ChromeJsonExportIsWellFormed) {
  Trace trace;
  trace.record(SpanKind::H2D, "pipe0", "h2d[1024B]", 0.0, 0.001, 1024);
  trace.record(SpanKind::Kernel, "pipe1", "stencil \"k\"", 0.001, 0.003, 0);
  std::ostringstream os;
  trace.dump_chrome_json(os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"HtoD\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"kernel\""), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":1024"), std::string::npos);
  // Quotes in labels are escaped.
  EXPECT_NE(json.find("stencil \\\"k\\\""), std::string::npos);
  // Both lanes got thread-name metadata.
  EXPECT_NE(json.find("pipe0"), std::string::npos);
  EXPECT_NE(json.find("pipe1"), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(Trace, ChromeJsonGoldenOutput) {
  // Byte-exact golden check: control characters escape as \u00XX, bytes and
  // plan-node ids land in args, metadata precedes spans. Times are chosen so
  // microsecond values print as small integers.
  Trace trace;
  trace.record(SpanKind::H2D, "s0", "up", 0.0, 1e-6, 10, 3);
  trace.record(SpanKind::Kernel, "s0", "k\x01", 1e-6, 3e-6, 0, -1);
  std::ostringstream os;
  trace.dump_chrome_json(os);
  const std::string expected =
      "{\"traceEvents\":["
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"s0\"}}"
      ",{\"name\":\"up\",\"cat\":\"HtoD\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
      "\"ts\":0,\"dur\":1,\"args\":{\"bytes\":10,\"plan_node\":3}}"
      ",{\"name\":\"k\\u0001\",\"cat\":\"kernel\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
      "\"ts\":1,\"dur\":2}"
      "]}";
  EXPECT_EQ(os.str(), expected);
}

TEST(Trace, SpanCapacityKeepsNewestAndCountsDrops) {
  Trace trace;
  trace.set_span_capacity(3);
  for (int i = 0; i < 5; ++i)
    trace.record(SpanKind::Kernel, "s0", "k" + std::to_string(i),
                  static_cast<SimTime>(i), static_cast<SimTime>(i) + 1.0, 0);
  EXPECT_EQ(trace.dropped_spans(), 2u);
  ASSERT_EQ(trace.spans().size(), 3u);
  // Newest three survive, oldest first.
  EXPECT_EQ(trace.label(trace.spans()[0]), "k2");
  EXPECT_EQ(trace.label(trace.spans()[1]), "k3");
  EXPECT_EQ(trace.label(trace.spans()[2]), "k4");
  trace.clear();
  EXPECT_EQ(trace.dropped_spans(), 0u);
  EXPECT_TRUE(trace.spans().empty());
}

TEST(Trace, ShrinkingCapacityEvictsOldest) {
  Trace trace;
  for (int i = 0; i < 5; ++i)
    trace.record(SpanKind::Kernel, "s0", "k" + std::to_string(i),
                  static_cast<SimTime>(i), static_cast<SimTime>(i) + 1.0, 0);
  trace.set_span_capacity(2);
  EXPECT_EQ(trace.dropped_spans(), 3u);
  ASSERT_EQ(trace.spans().size(), 2u);
  EXPECT_EQ(trace.label(trace.spans()[0]), "k3");
  EXPECT_EQ(trace.label(trace.spans()[1]), "k4");
  // Default capacity is unbounded.
  EXPECT_EQ(Trace{}.span_capacity(), 0u);
}

TEST(Trace, OccupancyIgnoresZeroLengthSpans) {
  Trace trace;
  trace.record(SpanKind::Kernel, "s0", "marker", 1.0, 1.0, 0);
  EXPECT_DOUBLE_EQ(trace.occupancy(SpanKind::Kernel), 0.0);
}

TEST(Trace, OccupancyMergesFullyNestedIntervals) {
  Trace trace;
  trace.record(SpanKind::Kernel, "s0", "outer", 0.0, 10.0, 0);
  trace.record(SpanKind::Kernel, "s1", "inner", 2.0, 3.0, 0);
  EXPECT_DOUBLE_EQ(trace.occupancy(SpanKind::Kernel), 10.0);
}

TEST(Trace, OccupancyHandlesIdenticalStarts) {
  Trace trace;
  trace.record(SpanKind::H2D, "s0", "a", 0.0, 2.0, 1);
  trace.record(SpanKind::H2D, "s1", "b", 0.0, 5.0, 1);
  EXPECT_DOUBLE_EQ(trace.occupancy(SpanKind::H2D), 5.0);
}

TEST(Trace, OccupancyUnionSpansMultipleKinds) {
  Trace trace;
  trace.record(SpanKind::H2D, "s0", "up", 0.0, 2.0, 1);
  trace.record(SpanKind::Kernel, "s0", "k", 1.0, 3.0, 0);
  trace.record(SpanKind::D2H, "s0", "down", 5.0, 6.0, 1);
  EXPECT_DOUBLE_EQ(trace.occupancy_union({SpanKind::H2D, SpanKind::Kernel}), 3.0);
  EXPECT_DOUBLE_EQ(
      trace.occupancy_union({SpanKind::H2D, SpanKind::D2H, SpanKind::Kernel}), 4.0);
}

TEST(Trace, OverlapEfficiencyBounds) {
  // Fully serial timeline: no realised overlap.
  Trace serial;
  serial.record(SpanKind::H2D, "s0", "up", 0.0, 1.0, 1);
  serial.record(SpanKind::Kernel, "s0", "k", 1.0, 3.0, 0);
  EXPECT_DOUBLE_EQ(overlap_efficiency(serial), 0.0);

  // Transfer fully hidden behind the kernel: perfect overlap.
  Trace perfect;
  perfect.record(SpanKind::H2D, "s0", "up", 0.0, 1.0, 1);
  perfect.record(SpanKind::Kernel, "s1", "k", 0.0, 2.0, 0);
  EXPECT_DOUBLE_EQ(overlap_efficiency(perfect), 1.0);

  // Only one kind ran: nothing to overlap, defined as 0.
  Trace lone;
  lone.record(SpanKind::Kernel, "s0", "k", 0.0, 2.0, 0);
  EXPECT_DOUBLE_EQ(overlap_efficiency(lone), 0.0);
}

TEST(Trace, PlanNodeStampsDefaultToMinusOne) {
  Trace trace;
  EXPECT_EQ(trace.plan_node(), -1);
  trace.set_plan_node(7);
  EXPECT_EQ(trace.plan_node(), 7);
  trace.record(SpanKind::Kernel, "s0", "k", 0.0, 1.0, 0, trace.plan_node());
  EXPECT_EQ(trace.spans().back().node, 7);
}

TEST(Trace, InternTableSurvivesClear) {
  Trace trace;
  const StringId lane = trace.intern("s0");
  const StringId label = trace.intern("k");
  trace.record(Span{SpanKind::Kernel, lane, label, -1, 0.0, 1.0, 0, -1});
  trace.clear();
  // Cached ids stay valid after clear (streams/tasks cache them).
  trace.record(Span{SpanKind::Kernel, lane, label, -1, 1.0, 2.0, 0, -1});
  ASSERT_EQ(trace.spans().size(), 1u);
  EXPECT_EQ(trace.lane(trace.spans()[0]), "s0");
  EXPECT_EQ(trace.label(trace.spans()[0]), "k");
  EXPECT_EQ(trace.intern("s0"), lane);
}

TEST(Task, ZeroDurationTaskCompletesAtItsStartTime) {
  Simulator sim;
  Engine eng(sim, "e", 1);
  auto before = Task::create(eng, 1.5, "before");
  auto marker = Task::create(eng, 0.0, "marker");
  marker->depends_on(before);
  before->submit(0.0);
  marker->submit(0.0);
  sim.run_all();
  EXPECT_TRUE(marker->done());
  EXPECT_DOUBLE_EQ(marker->start_time(), 1.5);
  EXPECT_DOUBLE_EQ(marker->end_time(), 1.5);
}

TEST(Task, SameTimestampTasksCompleteInSubmissionOrder) {
  Simulator sim;
  Engine eng(sim, "e", 8);
  std::vector<int> order;
  std::vector<TaskPtr> tasks;
  for (int i = 0; i < 8; ++i) {
    auto t = Task::create(eng, 0.0, "z" + std::to_string(i));
    t->on_complete([&, i] { order.push_back(i); });
    tasks.push_back(t);
  }
  // Submit in reverse: FIFO is by submission (release) order at one
  // timestamp, so completion order follows the submit calls.
  for (auto it = tasks.rbegin(); it != tasks.rend(); ++it) (*it)->submit(0.0);
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{7, 6, 5, 4, 3, 2, 1, 0}));
}

TEST(Engine, BusyTimeProRatesInFlightWork) {
  Simulator sim;
  Engine eng(sim, "e", 1);
  auto t1 = Task::create(eng, 2.0, "t1");
  auto t2 = Task::create(eng, 3.0, "t2");
  t1->submit(0.0);
  t2->submit(0.0);
  // At t=1.0, t1 is halfway through service: exactly 1.0s of busy time has
  // elapsed — crediting the full duration at dispatch would report 2.0 and
  // push mid-run utilization over 100%.
  sim.run_until_time(1.0);
  EXPECT_DOUBLE_EQ(eng.busy_time(), 1.0);
  EXPECT_LE(eng.busy_time(), sim.now() * eng.capacity());
  sim.run_until_time(3.0);
  EXPECT_DOUBLE_EQ(eng.busy_time(), 3.0);
  sim.run_all();
  EXPECT_DOUBLE_EQ(eng.busy_time(), 5.0);
}

TEST(TaskArena, RecyclesSlotsAndTracksHighWater) {
  Simulator sim;
  Engine eng(sim, "e", 4);
  TaskArena& arena = sim.extension<TaskArena>();
  for (int round = 0; round < 16; ++round) {
    std::vector<TaskPtr> batch;
    for (int i = 0; i < 8; ++i) {
      auto t = Task::create(eng, 0.5, "t");
      t->submit(sim.now());
      batch.push_back(std::move(t));
    }
    sim.run_all();
    batch.clear();
    EXPECT_EQ(arena.live(), 0u);
  }
  EXPECT_EQ(arena.created(), 16u * 8u);
  // Slot recycling keeps the footprint at one round's population.
  EXPECT_LE(arena.slots(), 8u);
  EXPECT_LE(arena.high_water(), 8u);
}

TEST(TaskArena, DroppedUnsubmittedTaskReleasesSuccessorEdges) {
  Simulator sim;
  Engine eng(sim, "e", 1);
  TaskArena& arena = sim.extension<TaskArena>();
  auto succ = Task::create(eng, 1.0, "succ");
  {
    auto pred = Task::create(eng, 1.0, "pred");
    succ->depends_on(pred);
    // pred dropped without ever being submitted: succ keeps waiting (the
    // dependency can never fire) but no references leak.
  }
  succ->submit(0.0);
  EXPECT_THROW(sim.run_until([&] { return succ->done(); }), Error);
  succ.reset();
  EXPECT_EQ(arena.live(), 0u);
}

TEST(Simulator, EventPoolRecyclesSlots) {
  Simulator sim;
  for (int round = 0; round < 32; ++round) {
    for (int i = 0; i < 4; ++i) sim.schedule_after(0.1 * (i + 1), [] {});
    sim.run_all();
  }
  EXPECT_EQ(sim.events_executed(), 32u * 4u);
  // The pool never grew past one round's peak.
  EXPECT_LE(sim.event_pool_slots(), 4u);
  EXPECT_LE(sim.events_high_water(), 4u);
  EXPECT_EQ(sim.events_pending(), 0u);
}

// The determinism contract the pooled core must keep: a large mixed
// workload executes the same events in the same order with the same trace
// bytes, run after run.
namespace determinism {

struct RunResult {
  std::uint64_t events = 0;
  SimTime makespan = 0.0;
  std::vector<std::uint32_t> completion_order;
  std::string trace_json;
};

RunResult run_mixed_workload(int jobs) {
  RunResult r;
  Simulator sim;
  Engine h2d(sim, "h2d", 2);
  Engine compute(sim, "compute", 8);
  Engine d2h(sim, "d2h", 2);
  Trace trace;
  std::vector<StringId> lanes;
  for (int i = 0; i < 16; ++i) lanes.push_back(trace.intern("s" + std::to_string(i)));
  const StringId up_l = trace.intern("up");
  const StringId k_l = trace.intern("k");
  const StringId down_l = trace.intern("down");

  std::vector<TaskPtr> tails;
  std::uint32_t id = 0;
  for (int j = 0; j < jobs; ++j) {
    const StringId lane = lanes[static_cast<std::size_t>(j % 16)];
    const SimTime release = 1e-7 * static_cast<double>(j);
    auto up = Task::create(h2d, 1e-6 * (1 + j % 5), "up");
    up->set_span(trace, SpanKind::H2D, lane, up_l, 128, -1);
    auto k = Task::create(compute, 1e-6 * (2 + j % 7), "k");
    k->set_span(trace, SpanKind::Kernel, lane, k_l, 0, -1);
    k->depends_on(up);
    auto down = Task::create(d2h, j % 3 == 0 ? 0.0 : 1e-6, "down");
    down->set_span(trace, SpanKind::D2H, lane, down_l, 128, -1);
    down->depends_on(k);
    for (auto* t : {&up, &k, &down}) {
      const std::uint32_t tid = id++;
      (*t)->on_complete([&r, tid] { r.completion_order.push_back(tid); });
      (*t)->submit(release);
    }
    tails.push_back(std::move(down));
  }
  r.makespan = sim.run_all();
  r.events = sim.events_executed();
  std::ostringstream os;
  trace.dump_chrome_json(os);
  r.trace_json = os.str();
  return r;
}

TEST(Determinism, MixedWorkloadIsBitIdenticalAcrossRuns) {
  const RunResult a = run_mixed_workload(10000);
  const RunResult b = run_mixed_workload(10000);
  EXPECT_EQ(a.events, b.events);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  // Event execution order, not just aggregate counts.
  ASSERT_EQ(a.completion_order.size(), b.completion_order.size());
  EXPECT_EQ(a.completion_order, b.completion_order);
  // Full trace bytes, not a summary.
  EXPECT_EQ(a.trace_json, b.trace_json);
}

}  // namespace determinism

}  // namespace
}  // namespace gpupipe::sim

