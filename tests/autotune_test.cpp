// Tests for the analytic cost model and the autotuning scheduler.
#include <gtest/gtest.h>

#include <vector>

#include "core/autotune.hpp"
#include "core/model.hpp"
#include "gpu/device_profile.hpp"

namespace gpupipe::core {
namespace {

PipelineSpec rows_spec(std::byte* in, std::byte* out, std::int64_t n, std::int64_t m) {
  PipelineSpec spec;
  spec.loop_begin = 0;
  spec.loop_end = n;
  spec.arrays = {
      ArraySpec{"in", MapType::To, in, sizeof(double), {n, m}, SplitSpec{0, Affine{1, 0}, 1}},
      ArraySpec{"out", MapType::From, out, sizeof(double), {n, m},
                SplitSpec{0, Affine{1, 0}, 1}},
  };
  return spec;
}

KernelFactory kernel(std::int64_t m, double bytes_per_elem) {
  return [m, bytes_per_elem](const ChunkContext& ctx) {
    gpu::KernelDesc k;
    k.flops = static_cast<double>(ctx.iterations() * m);
    k.bytes = static_cast<Bytes>(static_cast<double>(ctx.iterations() * m) * bytes_per_elem);
    return k;
  };
}

TEST(CostModel, PredictsMonotoneChunkCosts) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  std::byte* in = g.host_alloc(1 * MiB);
  std::byte* out = g.host_alloc(1 * MiB);
  auto spec = rows_spec(in, out, 1024, 128);
  const CostModel model(g.profile(), spec, usec(2.0));
  const ChunkCost c1 = model.chunk_cost(1);
  const ChunkCost c8 = model.chunk_cost(8);
  EXPECT_GT(c8.copy_in, c1.copy_in);
  EXPECT_GT(c8.kernel, c1.kernel);
  // Per-iteration, larger chunks are cheaper (fixed costs amortise).
  EXPECT_LT(c8.copy_in / 8.0, c1.copy_in);
}

TEST(CostModel, PredictionTracksSimulationWithinFactorTwo) {
  // The model is coarse, but for a plain streaming workload it should land
  // within 2x of the simulated region time across chunk sizes.
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  g.hazards().set_enabled(false);
  const std::int64_t n = 512, m = 8192;  // 64 KiB rows
  std::byte* in = g.host_alloc(static_cast<Bytes>(n * m) * sizeof(double));
  std::byte* out = g.host_alloc(static_cast<Bytes>(n * m) * sizeof(double));

  for (std::int64_t c : {2, 8, 32}) {
    auto spec = rows_spec(in, out, n, m);
    spec.chunk_size = c;
    spec.num_streams = 2;
    Pipeline p(g, spec);
    const SimTime t0 = g.host_now();
    p.run(kernel(m, 32.0));
    const SimTime simulated = g.host_now() - t0;

    // Seed the model with the true per-iteration kernel time.
    const SimTime per_iter =
        std::max(static_cast<double>(m) / g.profile().peak_flops,
                 static_cast<double>(m) * 32.0 / g.profile().mem_bandwidth);
    const CostModel model(g.profile(), spec, per_iter);
    const SimTime predicted = model.region_time(c);
    EXPECT_GT(predicted, 0.5 * simulated) << "chunk " << c;
    EXPECT_LT(predicted, 2.0 * simulated) << "chunk " << c;
  }
}

TEST(Autotune, FindsABetterConfigThanTheWorstCandidate) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  g.hazards().set_enabled(false);
  const std::int64_t n = 1024, m = 512;  // 4 KiB rows: chunk 1 is terrible
  std::byte* in = g.host_alloc(static_cast<Bytes>(n * m) * sizeof(double));
  std::byte* out = g.host_alloc(static_cast<Bytes>(n * m) * sizeof(double));
  auto spec = rows_spec(in, out, n, m);

  TuneOptions opt;
  opt.chunk_candidates = {1, 8, 64};
  opt.stream_candidates = {1, 2};
  opt.model_prefilter = false;  // measure everything
  const TuneResult r = autotune(g, spec, kernel(m, 16.0), opt);

  EXPECT_GT(r.chunk_size, 1);
  EXPECT_GE(r.num_streams, 2);
  SimTime worst = 0.0;
  for (const auto& c : r.explored)
    if (c.feasible) worst = std::max(worst, c.measured);
  EXPECT_LT(r.best_time, worst / 2.0);
  EXPECT_EQ(r.explored.size(), 6u);
}

TEST(Autotune, PrefilterPrunesBadChunksButKeepsTheWinner) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  g.hazards().set_enabled(false);
  const std::int64_t n = 1024, m = 512;
  std::byte* in = g.host_alloc(static_cast<Bytes>(n * m) * sizeof(double));
  std::byte* out = g.host_alloc(static_cast<Bytes>(n * m) * sizeof(double));
  auto spec = rows_spec(in, out, n, m);

  TuneOptions filtered;
  filtered.chunk_candidates = {1, 8, 64};
  filtered.stream_candidates = {2};
  filtered.model_prefilter = true;
  filtered.prune_factor = 2.0;
  const TuneResult with_filter = autotune(g, spec, kernel(m, 16.0), filtered);

  TuneOptions full = filtered;
  full.model_prefilter = false;
  const TuneResult without = autotune(g, spec, kernel(m, 16.0), full);

  EXPECT_EQ(with_filter.chunk_size, without.chunk_size);
  EXPECT_LT(with_filter.explored.size(), without.explored.size());
}

TEST(Autotune, RespectsMemoryLimit) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  g.hazards().set_enabled(false);
  const std::int64_t n = 1024, m = 65536;  // 512 KiB rows
  std::byte* in = g.host_alloc(static_cast<Bytes>(n * m) * sizeof(double));
  std::byte* out = g.host_alloc(static_cast<Bytes>(n * m) * sizeof(double));
  auto spec = rows_spec(in, out, n, m);
  spec.mem_limit = 32 * MiB;  // chunk 64 with 2 streams would need > 128 MiB

  TuneOptions opt;
  opt.chunk_candidates = {1, 4, 64};
  opt.stream_candidates = {2};
  opt.model_prefilter = false;
  const TuneResult r = autotune(g, spec, kernel(m, 16.0), opt);
  EXPECT_LE(r.chunk_size, 4);
  bool infeasible_seen = false;
  for (const auto& c : r.explored) infeasible_seen = infeasible_seen || !c.feasible;
  EXPECT_TRUE(infeasible_seen);
}

TEST(Autotune, RejectsAdaptiveSchedule) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  std::byte* in = g.host_alloc(1 * MiB);
  std::byte* out = g.host_alloc(1 * MiB);
  auto spec = rows_spec(in, out, 64, 64);
  spec.schedule = ScheduleKind::Adaptive;
  EXPECT_THROW(autotune(g, spec, kernel(64, 16.0)), Error);
}

}  // namespace
}  // namespace gpupipe::core
