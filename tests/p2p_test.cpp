// Tests for peer-to-peer device copies and the machine-wide hazard tracker.
#include <gtest/gtest.h>

#include <vector>

#include "gpu/device_profile.hpp"
#include "gpu/gpu.hpp"

namespace gpupipe::gpu {
namespace {

TEST(P2P, RoundTripsDataBetweenDevices) {
  auto ctx = make_shared_context();
  Gpu a(nvidia_k40m(), ExecMode::Functional, ctx);
  Gpu b(nvidia_k40m(), ExecMode::Functional, ctx);
  std::vector<double> host(256, 7.5), back(256, 0.0);

  std::byte* dev_a = a.device_malloc(256 * sizeof(double));
  std::byte* dev_b = b.device_malloc(256 * sizeof(double));
  a.memcpy_h2d(dev_a, reinterpret_cast<std::byte*>(host.data()), 256 * sizeof(double));
  a.memcpy_p2p_async(b, dev_b, dev_a, 256 * sizeof(double), a.default_stream());
  a.synchronize();
  b.memcpy_d2h(reinterpret_cast<std::byte*>(back.data()), dev_b, 256 * sizeof(double));
  EXPECT_EQ(host, back);
}

TEST(P2P, RateIsTheSlowerDevicesBus) {
  auto ctx = make_shared_context();
  Gpu fast(nvidia_k40m(), ExecMode::Modeled, ctx);   // 6.0 GB/s
  Gpu slow(amd_hd7970(), ExecMode::Modeled, ctx);    // 6.5 GB/s peak
  std::byte* df = fast.device_malloc(64 * MiB);
  std::byte* ds = slow.device_malloc(64 * MiB);
  auto t = fast.memcpy_p2p_async(slow, ds, df, 64 * MiB, fast.default_stream());
  fast.synchronize();
  const double expected =
      fast.profile().copy_setup_latency + static_cast<double>(64 * MiB) / 6.0e9;
  EXPECT_NEAR(t->duration(), expected, 1e-9);
}

TEST(P2P, RequiresASharedContext) {
  Gpu a(nvidia_k40m(), ExecMode::Modeled);
  Gpu b(nvidia_k40m(), ExecMode::Modeled);
  std::byte* da = a.device_malloc(1024);
  std::byte* db = b.device_malloc(1024);
  EXPECT_THROW(a.memcpy_p2p_async(b, db, da, 1024, a.default_stream()), Error);
}

TEST(P2P, BoundsAreCheckedOnBothDevices) {
  auto ctx = make_shared_context();
  Gpu a(nvidia_k40m(), ExecMode::Modeled, ctx);
  Gpu b(nvidia_k40m(), ExecMode::Modeled, ctx);
  std::byte* da = a.device_malloc(1024);
  std::byte* db = b.device_malloc(512);
  EXPECT_THROW(a.memcpy_p2p_async(b, db, da, 1024, a.default_stream()), Error);
  std::byte* db2 = b.device_malloc(1024);
  EXPECT_NO_THROW(a.memcpy_p2p_async(b, db2, da, 1024, a.default_stream()));
  a.synchronize();
}

TEST(P2P, CrossDeviceRaceIsCaughtByTheSharedTracker) {
  // Device A pushes into device B's buffer while a kernel on B still reads
  // it and no event orders the two — the machine-wide tracker must object.
  auto ctx = make_shared_context();
  Gpu a(nvidia_k40m(), ExecMode::Functional, ctx);
  Gpu b(nvidia_k40m(), ExecMode::Functional, ctx);
  std::byte* da = a.device_malloc(8 * MiB);
  std::byte* db = b.device_malloc(8 * MiB);

  KernelDesc reader;
  reader.name = "b-reader";
  reader.fixed_duration = 1.0;
  reader.effects.reads.push_back({db, 8 * MiB});
  b.launch(b.default_stream(), std::move(reader));
  a.memcpy_p2p_async(b, db, da, 8 * MiB, a.default_stream());
  EXPECT_THROW(a.synchronize(), HazardError);
}

TEST(P2P, EventOrderingAcrossDevicesFixesTheRace) {
  auto ctx = make_shared_context();
  Gpu a(nvidia_k40m(), ExecMode::Functional, ctx);
  Gpu b(nvidia_k40m(), ExecMode::Functional, ctx);
  std::byte* da = a.device_malloc(8 * MiB);
  std::byte* db = b.device_malloc(8 * MiB);

  KernelDesc reader;
  reader.fixed_duration = 1.0;
  reader.effects.reads.push_back({db, 8 * MiB});
  b.launch(b.default_stream(), std::move(reader));
  EventPtr done = b.record_event(b.default_stream());
  // Cross-device event wait: A's stream waits for B's kernel.
  a.wait_event(a.default_stream(), done);
  a.memcpy_p2p_async(b, db, da, 8 * MiB, a.default_stream());
  EXPECT_NO_THROW(a.synchronize());
}

}  // namespace
}  // namespace gpupipe::gpu
