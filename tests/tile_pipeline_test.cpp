// Tests for the 2-D (nested-loop) tile pipeline extension.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/tile_pipeline.hpp"
#include "gpu/device_profile.hpp"

namespace gpupipe::core {
namespace {

/// Tiled doubling: out tile (i,j) = 2 * in tile (i,j), Th x Tw tiles.
TileSpec double_spec(std::vector<double>& in, std::vector<double>& out, std::int64_t rows,
                     std::int64_t cols, std::int64_t th, std::int64_t tw, int streams) {
  TileSpec spec;
  spec.num_streams = streams;
  spec.ni = rows / th;
  spec.nj = cols / tw;
  spec.arrays = {
      TileArraySpec{"in", MapType::To, reinterpret_cast<std::byte*>(in.data()),
                    sizeof(double), rows, cols, TileDimSpec{Affine{th, 0}, th},
                    TileDimSpec{Affine{tw, 0}, tw}},
      TileArraySpec{"out", MapType::From, reinterpret_cast<std::byte*>(out.data()),
                    sizeof(double), rows, cols, TileDimSpec{Affine{th, 0}, th},
                    TileDimSpec{Affine{tw, 0}, tw}},
  };
  return spec;
}

TileKernelFactory doubler(std::int64_t th, std::int64_t tw) {
  return [th, tw](const TileContext& ctx) {
    gpu::KernelDesc k;
    k.flops = static_cast<double>(th * tw);
    k.bytes = static_cast<Bytes>(th * tw) * 16;
    const TileBufferView in = ctx.view("in");
    const TileBufferView out = ctx.view("out");
    const std::int64_t r0 = ctx.i() * th, c0 = ctx.j() * tw;
    k.body = [in, out, r0, c0, th, tw] {
      for (std::int64_t r = r0; r < r0 + th; ++r)
        for (std::int64_t c = c0; c < c0 + tw; ++c) *out.at(r, c) = 2.0 * *in.at(r, c);
    };
    return k;
  };
}

TEST(TilePipeline, TiledDoublingIsCorrect) {
  gpu::Gpu g(gpu::nvidia_k40m());
  const std::int64_t rows = 24, cols = 36, th = 4, tw = 6;
  std::vector<double> in(rows * cols), out(rows * cols, -1.0);
  std::iota(in.begin(), in.end(), 0.0);
  TilePipeline p(g, double_spec(in, out, rows, cols, th, tw, 2));
  p.run(doubler(th, tw));
  for (std::int64_t x = 0; x < rows * cols; ++x) ASSERT_DOUBLE_EQ(out[x], 2.0 * in[x]) << x;
}

class TileSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TileSweep, CorrectAcrossTileShapesAndStreams) {
  const auto [tile, streams] = GetParam();
  gpu::Gpu g(gpu::nvidia_k40m());
  const std::int64_t rows = 24, cols = 24;
  std::vector<double> in(rows * cols), out(rows * cols, -1.0);
  std::iota(in.begin(), in.end(), 1.0);
  TilePipeline p(g, double_spec(in, out, rows, cols, tile, tile, streams));
  p.run(doubler(tile, tile));
  for (std::int64_t x = 0; x < rows * cols; ++x) ASSERT_DOUBLE_EQ(out[x], 2.0 * in[x]);
}

INSTANTIATE_TEST_SUITE_P(Shapes, TileSweep,
                         ::testing::Combine(::testing::Values(2, 3, 4, 6, 12, 24),
                                            ::testing::Values(1, 2, 3, 4)));

TEST(TilePipeline, HaloedBlurMatchesReference) {
  // 3x3 box blur over interior tiles: input windows carry a 1-element halo
  // in both dimensions (window = tile + 2), crossing band boundaries.
  gpu::Gpu g(gpu::nvidia_k40m());
  const std::int64_t rows = 20, cols = 28, th = 4, tw = 4;
  std::vector<double> in(rows * cols), out(rows * cols, 0.0);
  for (std::int64_t x = 0; x < rows * cols; ++x)
    in[static_cast<std::size_t>(x)] = static_cast<double>((x * 7) % 23);

  TileSpec spec;
  spec.num_streams = 2;
  spec.ni = (rows - 2) / th;  // interior bands
  spec.nj = (cols - 2) / tw;
  spec.arrays = {
      TileArraySpec{"in", MapType::To, reinterpret_cast<std::byte*>(in.data()),
                    sizeof(double), rows, cols, TileDimSpec{Affine{th, 0}, th + 2},
                    TileDimSpec{Affine{tw, 0}, tw + 2}},
      TileArraySpec{"out", MapType::From, reinterpret_cast<std::byte*>(out.data()),
                    sizeof(double), rows, cols, TileDimSpec{Affine{th, 1}, th},
                    TileDimSpec{Affine{tw, 1}, tw}},
  };
  TilePipeline p(g, spec);
  p.run([th, tw](const TileContext& ctx) {
    gpu::KernelDesc k;
    const TileBufferView vin = ctx.view("in");
    const TileBufferView vout = ctx.view("out");
    const std::int64_t r0 = ctx.i() * th + 1, c0 = ctx.j() * tw + 1;
    k.body = [vin, vout, r0, c0, th, tw] {
      for (std::int64_t r = r0; r < r0 + th; ++r) {
        for (std::int64_t c = c0; c < c0 + tw; ++c) {
          double acc = 0.0;
          for (int dr = -1; dr <= 1; ++dr)
            for (int dc = -1; dc <= 1; ++dc) acc += *vin.at(r + dr, c + dc);
          *vout.at(r, c) = acc / 9.0;
        }
      }
    };
    return k;
  });

  for (std::int64_t r = 1; r < 1 + spec.ni * th; ++r) {
    for (std::int64_t c = 1; c < 1 + spec.nj * tw; ++c) {
      double acc = 0.0;
      for (int dr = -1; dr <= 1; ++dr)
        for (int dc = -1; dc <= 1; ++dc) acc += in[(r + dr) * cols + (c + dc)];
      ASSERT_DOUBLE_EQ(out[r * cols + c], acc / 9.0) << r << "," << c;
    }
  }
}

TEST(TilePipeline, BufferIsASmallWindowOfTheMatrix) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  const std::int64_t rows = 4096, cols = 4096, tile = 64;
  std::byte* in = g.host_alloc(static_cast<Bytes>(rows * cols) * 8);
  std::byte* out = g.host_alloc(static_cast<Bytes>(rows * cols) * 8);
  TileSpec spec;
  spec.num_streams = 2;
  spec.ni = rows / tile;
  spec.nj = cols / tile;
  spec.arrays = {
      TileArraySpec{"in", MapType::To, in, 8, rows, cols, TileDimSpec{Affine{tile, 0}, tile},
                    TileDimSpec{Affine{tile, 0}, tile}},
      TileArraySpec{"out", MapType::From, out, 8, rows, cols,
                    TileDimSpec{Affine{tile, 0}, tile}, TileDimSpec{Affine{tile, 0}, tile}},
  };
  TilePipeline p(g, spec);
  const Bytes full = 2u * rows * cols * 8;
  EXPECT_LT(p.buffer_footprint(), full / 500);
}

TEST(TilePipeline, ColumnHaloIsElidedWithinABand) {
  gpu::Gpu g(gpu::nvidia_k40m());
  const std::int64_t rows = 8, cols = 32, th = 8, tw = 4;
  std::vector<double> in(rows * cols, 1.0), out(rows * cols);
  // One band, column windows with a 2-column halo: [j*tw, j*tw + tw + 2).
  TileSpec spec;
  spec.num_streams = 2;
  spec.ni = 1;
  spec.nj = (cols - 2) / tw;
  spec.arrays = {TileArraySpec{"in", MapType::To, reinterpret_cast<std::byte*>(in.data()),
                               sizeof(double), rows, cols, TileDimSpec{Affine{th, 0}, th},
                               TileDimSpec{Affine{tw, 0}, tw + 2}}};
  TilePipeline p(g, spec);
  p.run([](const TileContext&) { return gpu::KernelDesc{}; });
  // Each column crosses the bus once despite overlapping windows:
  // columns [0, nj*tw + 2) x 8 rows x 8 bytes.
  const Bytes expected = static_cast<Bytes>((spec.nj * tw + 2) * rows) * sizeof(double);
  EXPECT_EQ(p.h2d_bytes(), expected);
}

TEST(TilePipeline, HazardTrackerAcceptsTheSchedule) {
  gpu::Gpu g(gpu::nvidia_k40m());
  ASSERT_TRUE(g.hazards().enabled());
  const std::int64_t rows = 16, cols = 16, t = 4;
  std::vector<double> in(rows * cols, 1.0), out(rows * cols);
  TilePipeline p(g, double_spec(in, out, rows, cols, t, t, 3));
  EXPECT_NO_THROW(p.run(doubler(t, t)));
}

TEST(TilePipeline, ValidatesSpecs) {
  gpu::Gpu g(gpu::nvidia_k40m());
  TileSpec empty;
  EXPECT_THROW(TilePipeline(g, empty), Error);

  std::vector<double> data(16, 1.0);
  TileSpec bad;
  bad.ni = bad.nj = 1;
  bad.arrays = {TileArraySpec{"out", MapType::From,
                              reinterpret_cast<std::byte*>(data.data()), sizeof(double), 4, 4,
                              TileDimSpec{Affine{1, 0}, 2},  // overlapping output rows
                              TileDimSpec{Affine{1, 0}, 1}}};
  EXPECT_THROW(TilePipeline(g, bad), Error);
}

TEST(TilePipeline, OutOfBoundsTileIsRejectedAtRuntime) {
  gpu::Gpu g(gpu::nvidia_k40m());
  std::vector<double> in(16, 1.0);
  TileSpec spec;
  spec.ni = 2;
  spec.nj = 1;
  spec.arrays = {TileArraySpec{"in", MapType::To, reinterpret_cast<std::byte*>(in.data()),
                               sizeof(double), 4, 4, TileDimSpec{Affine{3, 0}, 3},
                               TileDimSpec{Affine{4, 0}, 4}}};
  TilePipeline p(g, spec);  // tile i=1 needs rows [3,6) of a 4-row matrix
  EXPECT_THROW(p.run([](const TileContext&) { return gpu::KernelDesc{}; }), Error);
}

}  // namespace
}  // namespace gpupipe::core
