// Unit tests for the device ring buffers: layout, addressing, wrap-around
// segmentation, footprint prediction, and effect-range generation.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/buffer.hpp"
#include "gpu/device_profile.hpp"

namespace gpupipe::core {
namespace {

gpu::DeviceProfile profile() { return gpu::nvidia_k40m(); }

ArraySpec slab_spec(std::byte* host, std::int64_t rows, std::int64_t cols) {
  ArraySpec a;
  a.name = "A";
  a.map = MapType::To;
  a.host = host;
  a.elem_size = sizeof(double);
  a.dims = {rows, cols};
  a.split = SplitSpec{0, Affine{1, 0}, 1};
  return a;
}

ArraySpec block2d_spec(std::byte* host, std::int64_t rows, std::int64_t cols) {
  ArraySpec a = slab_spec(host, rows, cols);
  a.split = SplitSpec{1, Affine{1, 0}, 1};
  return a;
}

TEST(RingBuffer, SlabLayoutAndAddressing) {
  gpu::Gpu g(profile());
  std::vector<double> host(20 * 4);
  RingBuffer rb(g, slab_spec(reinterpret_cast<std::byte*>(host.data()), 20, 4), 6);
  EXPECT_EQ(rb.ring_len(), 6);
  EXPECT_EQ(rb.footprint(), 6u * 4 * sizeof(double));
  const BufferView v = rb.view();
  EXPECT_FALSE(v.block2d);
  EXPECT_EQ(v.slab, 4 * sizeof(double));
  EXPECT_EQ(v.slot(7), 1);
  EXPECT_EQ(reinterpret_cast<std::byte*>(v.slab_ptr(7)), v.base + 1 * v.slab);
}

TEST(RingBuffer, RingNeverExceedsArrayExtent) {
  gpu::Gpu g(profile());
  std::vector<double> host(5 * 4);
  RingBuffer rb(g, slab_spec(reinterpret_cast<std::byte*>(host.data()), 5, 4), 100);
  EXPECT_EQ(rb.ring_len(), 5);
}

TEST(RingBuffer, SlabRoundTripThroughRing) {
  gpu::Gpu g(profile());
  const std::int64_t rows = 20, cols = 8;
  std::vector<double> in(rows * cols), out(rows * cols, 0.0);
  std::iota(in.begin(), in.end(), 0.0);
  ArraySpec in_spec = slab_spec(reinterpret_cast<std::byte*>(in.data()), rows, cols);
  ArraySpec out_spec = slab_spec(reinterpret_cast<std::byte*>(out.data()), rows, cols);
  out_spec.map = MapType::From;
  RingBuffer rin(g, in_spec, 4);
  RingBuffer rout(g, out_spec, 4);

  // Stream rows through the 4-slot rings in blocks of 2, copying in, then
  // device-to-device via views, then out.
  for (std::int64_t lo = 0; lo < rows; lo += 2) {
    rin.copy_in(g.default_stream(), lo, lo + 2);
    gpu::KernelDesc k;
    k.flops = 1;
    const BufferView vi = rin.view(), vo = rout.view();
    k.body = [vi, vo, lo, cols] {
      for (std::int64_t r = lo; r < lo + 2; ++r)
        for (std::int64_t c = 0; c < cols; ++c) vo.slab_ptr(r)[c] = vi.slab_ptr(r)[c];
    };
    g.launch(g.default_stream(), std::move(k));
    rout.copy_out(g.default_stream(), lo, lo + 2);
  }
  g.synchronize();
  EXPECT_EQ(in, out);
}

TEST(RingBuffer, WrappingRangeSplitsIntoTwoTransfers) {
  gpu::Gpu g(profile());
  std::vector<double> host(20 * 4);
  RingBuffer rb(g, slab_spec(reinterpret_cast<std::byte*>(host.data()), 20, 4), 6);
  EXPECT_EQ(rb.copy_in(g.default_stream(), 0, 6), 1);   // exactly one ring
  EXPECT_EQ(rb.copy_in(g.default_stream(), 4, 8), 2);   // wraps at slot 6
  EXPECT_EQ(rb.copy_in(g.default_stream(), 6, 12), 1);  // aligned again
  g.synchronize();
}

TEST(RingBuffer, RangeLargerThanRingThrows) {
  gpu::Gpu g(profile());
  std::vector<double> host(20 * 4);
  RingBuffer rb(g, slab_spec(reinterpret_cast<std::byte*>(host.data()), 20, 4), 4);
  EXPECT_THROW(rb.copy_in(g.default_stream(), 0, 5), Error);
  EXPECT_THROW(rb.copy_in(g.default_stream(), -1, 2), Error);
  EXPECT_THROW(rb.copy_in(g.default_stream(), 18, 21), Error);  // beyond extent
}

TEST(RingBuffer, Block2dLayoutUsesPitchedAllocation) {
  gpu::Gpu g(profile());
  std::vector<double> host(16 * 32);
  RingBuffer rb(g, block2d_spec(reinterpret_cast<std::byte*>(host.data()), 16, 32), 8);
  const BufferView v = rb.view();
  EXPECT_TRUE(v.block2d);
  EXPECT_EQ(v.height, 16);
  EXPECT_GE(v.pitch, 8 * sizeof(double));
  // Element (row 3, col 10) lives at slot 10 % 8 = 2 of buffer row 3.
  EXPECT_EQ(reinterpret_cast<std::byte*>(v.elem_ptr(3, 10)),
            v.base + 3 * v.pitch + 2 * sizeof(double));
}

TEST(RingBuffer, Block2dRoundTrip) {
  gpu::Gpu g(profile());
  const std::int64_t rows = 8, cols = 24;
  std::vector<double> in(rows * cols);
  std::iota(in.begin(), in.end(), 0.0);
  RingBuffer rb(g, block2d_spec(reinterpret_cast<std::byte*>(in.data()), rows, cols), 6);
  rb.copy_in(g.default_stream(), 6, 12);  // columns 6..11 -> slots 0..5
  g.synchronize();
  const BufferView v = rb.view();
  for (std::int64_t r = 0; r < rows; ++r)
    for (std::int64_t c = 6; c < 12; ++c)
      ASSERT_DOUBLE_EQ(*v.elem_ptr(r, c), in[static_cast<std::size_t>(r * cols + c)]);
}

TEST(RingBuffer, PredictFootprintMatchesActual) {
  gpu::Gpu g(profile());
  std::vector<double> host(64 * 16);
  auto s = slab_spec(reinterpret_cast<std::byte*>(host.data()), 64, 16);
  RingBuffer rb(g, s, 10);
  EXPECT_EQ(RingBuffer::predict_footprint(g, s, 10), rb.footprint());
  auto b = block2d_spec(reinterpret_cast<std::byte*>(host.data()), 64, 16);
  RingBuffer rb2(g, b, 10);
  EXPECT_EQ(RingBuffer::predict_footprint(g, b, 10), rb2.footprint());
}

TEST(RingBuffer, AppendRangesCoversCopiedBytes) {
  gpu::Gpu g(profile());
  std::vector<double> host(20 * 4);
  RingBuffer rb(g, slab_spec(reinterpret_cast<std::byte*>(host.data()), 20, 4), 6);
  std::vector<gpu::MemRange> ranges;
  rb.append_ranges(ranges, 4, 8);  // wraps: [slot 4..6) + [slot 0..2)
  ASSERT_EQ(ranges.size(), 2u);
  Bytes total = 0;
  for (const auto& r : ranges) total += r.size * r.rows;
  EXPECT_EQ(total, 4u * 4 * sizeof(double));
}

TEST(RingBuffer, FreesDeviceMemoryOnDestruction) {
  gpu::Gpu g(profile());
  std::vector<double> host(64 * 16);
  const Bytes before = g.device_mem_stats().current;
  {
    RingBuffer rb(g, slab_spec(reinterpret_cast<std::byte*>(host.data()), 64, 16), 8);
    EXPECT_GT(g.device_mem_stats().current, before);
  }
  EXPECT_EQ(g.device_mem_stats().current, before);
}

TEST(RingBuffer, RebindHostSwitchesSourceArray) {
  gpu::Gpu g(profile());
  std::vector<double> a(8 * 2, 1.0), b(8 * 2, 2.0), out(2);
  RingBuffer rb(g, slab_spec(reinterpret_cast<std::byte*>(a.data()), 8, 2), 4);
  rb.copy_in(g.default_stream(), 0, 1);
  g.synchronize();
  EXPECT_DOUBLE_EQ(rb.view().slab_ptr(0)[0], 1.0);
  rb.rebind_host(reinterpret_cast<std::byte*>(b.data()));
  rb.copy_in(g.default_stream(), 1, 2);
  g.synchronize();
  EXPECT_DOUBLE_EQ(rb.view().slab_ptr(1)[0], 2.0);
  (void)out;
}

}  // namespace
}  // namespace gpupipe::core
