// Unit tests for the source-to-source code generator.
#include <gtest/gtest.h>

#include "dsl/codegen.hpp"

namespace gpupipe::dsl {
namespace {

CodegenInput fig2_input() {
  CodegenInput in;
  in.directive =
      "pipeline(static[1,3]) "
      "pipeline_map(to: A0[k-1:3][0:ny][0:nx]) "
      "pipeline_map(from: Anext[k:1][0:ny][0:nx])";
  in.loop_var = "k";
  in.loop_begin = "1";
  in.loop_end = "nz - 1";
  in.arrays = {{"A0", "double", {"nz", "ny", "nx"}}, {"Anext", "double", {"nz", "ny", "nx"}}};
  in.function_name = "stencil_region";
  return in;
}

TEST(Codegen, EmitsAllThePlumbing) {
  const std::string code = generate_cpp(fig2_input());
  // Function signature: device + arrays + every free symbol.
  EXPECT_NE(code.find("void stencil_region(gpupipe::gpu::Gpu& device"), std::string::npos);
  EXPECT_NE(code.find("double* A0"), std::string::npos);
  EXPECT_NE(code.find("double* Anext"), std::string::npos);
  EXPECT_NE(code.find("std::int64_t nx"), std::string::npos);
  EXPECT_NE(code.find("std::int64_t ny"), std::string::npos);
  EXPECT_NE(code.find("std::int64_t nz"), std::string::npos);
  // Bindings and environment.
  EXPECT_NE(code.find("dsl::HostArray::of(A0"), std::string::npos);
  EXPECT_NE(code.find("{\"ny\", ny}"), std::string::npos);
  // Directive round-trips verbatim into dsl::compile.
  EXPECT_NE(code.find("pipeline_map(to: A0[k-1:3][0:ny][0:nx])"), std::string::npos);
  EXPECT_NE(code.find("\"k\", (1), (nz - 1)"), std::string::npos);
  // Views and the kernel scaffold.
  EXPECT_NE(code.find("ctx.view(\"A0\")"), std::string::npos);
  EXPECT_NE(code.find("ctx.view(\"Anext\")"), std::string::npos);
  EXPECT_NE(code.find("pipeline.run"), std::string::npos);
  EXPECT_NE(code.find("TODO"), std::string::npos);  // placeholder body
}

TEST(Codegen, DerivesCostDefaultsFromMapWindows) {
  const std::string code = generate_cpp(fig2_input());
  // Per-iteration window products, one per map, from the bracket extents.
  EXPECT_NE(code.find("A0_window_elems = (3) * (ny) * (nx)"), std::string::npos);
  EXPECT_NE(code.find("Anext_window_elems = (1) * (ny) * (nx)"), std::string::npos);
  EXPECT_NE(code.find("sizeof(double)"), std::string::npos);
  // The defaults are actually assigned — no cost-model TODO remains.
  EXPECT_NE(code.find("kernel.flops = static_cast<double>(k_iters)"), std::string::npos);
  EXPECT_NE(code.find("kernel.bytes = static_cast<Bytes>(k_iters)"), std::string::npos);
  EXPECT_EQ(code.find("TODO: set kernel.flops"), std::string::npos);
}

TEST(Codegen, InsertsProvidedKernelBody) {
  CodegenInput in = fig2_input();
  in.kernel_body = "do_the_math(A0_view, Anext_view, k_begin, k_end);";
  const std::string code = generate_cpp(in);
  EXPECT_NE(code.find("do_the_math(A0_view, Anext_view"), std::string::npos);
  EXPECT_EQ(code.find("TODO: port the loop body"), std::string::npos);
}

TEST(Codegen, LoopVariableIsNotAParameter) {
  const std::string code = generate_cpp(fig2_input());
  EXPECT_EQ(code.find("std::int64_t k)"), std::string::npos);
  EXPECT_EQ(code.find("std::int64_t k,"), std::string::npos);
}

TEST(Codegen, MissingArrayDeclarationThrows) {
  CodegenInput in = fig2_input();
  in.arrays.pop_back();  // drop Anext
  EXPECT_THROW(generate_cpp(in), CodegenError);
}

TEST(Codegen, UnusedArrayDeclarationThrows) {
  CodegenInput in = fig2_input();
  in.arrays.push_back({"Stray", "float", {"n"}});
  EXPECT_THROW(generate_cpp(in), CodegenError);
}

TEST(Codegen, DimensionCountMismatchThrows) {
  CodegenInput in = fig2_input();
  in.arrays[0].dims = {"nz", "ny"};  // directive has 3 dims
  EXPECT_THROW(generate_cpp(in), CodegenError);
}

TEST(Codegen, InvalidDirectiveSurfacesParseError) {
  CodegenInput in = fig2_input();
  in.directive = "pipeline(bogus)";
  EXPECT_THROW(generate_cpp(in), ParseError);
}

TEST(Codegen, MissingLoopEndThrows) {
  CodegenInput in = fig2_input();
  in.loop_end.clear();
  EXPECT_THROW(generate_cpp(in), Error);
}

TEST(Codegen, RejectsNonIdentifierFunctionName) {
  CodegenInput in = fig2_input();
  in.function_name = "not a name";
  EXPECT_THROW(generate_cpp(in), Error);
}

}  // namespace
}  // namespace gpupipe::dsl
