// Deterministic fuzz tests: randomly generated directives round-trip
// through parse + bind, and randomly configured pipelines always reproduce
// the host reference. Seeds are fixed, so failures are reproducible.
#include <gtest/gtest.h>

#include <numeric>
#include <sstream>
#include <vector>

#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "dsl/bind.hpp"
#include "gpu/device_profile.hpp"

namespace gpupipe {
namespace {

TEST(DirectiveFuzz, RandomValidDirectivesParseAndBind) {
  Rng rng(0xD1CE);
  for (int trial = 0; trial < 200; ++trial) {
    const std::int64_t window = 1 + static_cast<std::int64_t>(rng.next_below(4));
    const std::int64_t offset = -static_cast<std::int64_t>(rng.next_below(window));
    const std::int64_t scale = 1 + static_cast<std::int64_t>(rng.next_below(3));
    const std::int64_t inner = 2 + static_cast<std::int64_t>(rng.next_below(30));
    const std::int64_t chunk = 1 + static_cast<std::int64_t>(rng.next_below(8));
    const int streams = 1 + static_cast<int>(rng.next_below(6));
    const std::int64_t iters = 4 + static_cast<std::int64_t>(rng.next_below(40));

    // Split dimension extent must cover every window the loop touches.
    const std::int64_t loop_begin = std::max<std::int64_t>(0, -offset);
    const std::int64_t loop_end = loop_begin + iters;
    const std::int64_t outer = scale * (loop_end - 1) + offset + window;

    std::ostringstream dir;
    dir << "pipeline(static[" << chunk << "," << streams << "]) "
        << "pipeline_map(to: A[";
    if (scale != 1) dir << scale << "*";
    dir << "k";
    if (offset > 0) dir << "+" << offset;
    if (offset < 0) dir << offset;
    dir << ":" << window << "][0:m])";

    std::vector<double> data(static_cast<std::size_t>(outer * inner), 1.0);
    const core::PipelineSpec spec = dsl::compile(
        dir.str(), "k", loop_begin, loop_end,
        {{"A", dsl::HostArray::of(data.data(), {outer, inner})}}, {{"m", inner}});

    ASSERT_EQ(spec.chunk_size, chunk) << dir.str();
    ASSERT_EQ(spec.num_streams, streams);
    ASSERT_EQ(spec.arrays[0].split.start, (core::Affine{scale, offset})) << dir.str();
    ASSERT_EQ(spec.arrays[0].split.window, window);
    ASSERT_NO_THROW(spec.validate());
  }
}

TEST(PipelineFuzz, RandomConfigurationsMatchTheReference) {
  Rng rng(0xF00D);
  for (int trial = 0; trial < 60; ++trial) {
    const std::int64_t n = 3 + static_cast<std::int64_t>(rng.next_below(60));
    const std::int64_t m = 1 + static_cast<std::int64_t>(rng.next_below(24));
    const std::int64_t chunk = 1 + static_cast<std::int64_t>(rng.next_below(12));
    const int streams = 1 + static_cast<int>(rng.next_below(6));
    const std::int64_t window = 1 + static_cast<std::int64_t>(rng.next_below(3));
    // Input window [k, k+window) over loop [0, n-window+1).
    const std::int64_t loop_end = n - window + 1;
    if (loop_end <= 0) continue;

    gpu::Gpu g(gpu::nvidia_k40m());
    std::vector<double> in(n * m);
    std::vector<double> out(loop_end * m, 0.0);
    for (auto& v : in) v = rng.uniform(-1.0, 1.0);

    core::PipelineSpec spec;
    spec.chunk_size = chunk;
    spec.num_streams = streams;
    spec.loop_begin = 0;
    spec.loop_end = loop_end;
    spec.arrays = {
        core::ArraySpec{"in", core::MapType::To, reinterpret_cast<std::byte*>(in.data()),
                        sizeof(double), {n, m},
                        core::SplitSpec{0, core::Affine{1, 0}, window}},
        core::ArraySpec{"out", core::MapType::From,
                        reinterpret_cast<std::byte*>(out.data()), sizeof(double),
                        {loop_end, m}, core::SplitSpec{0, core::Affine{1, 0}, 1}},
    };
    core::Pipeline p(g, spec);
    p.run([m, window](const core::ChunkContext& ctx) {
      gpu::KernelDesc k;
      const core::BufferView vin = ctx.view("in");
      const core::BufferView vout = ctx.view("out");
      const std::int64_t lo = ctx.begin(), hi = ctx.end();
      // out[k] = sum of the window rows.
      k.body = [vin, vout, lo, hi, m, window] {
        for (std::int64_t r = lo; r < hi; ++r) {
          double* dst = vout.slab_ptr(r);
          for (std::int64_t j = 0; j < m; ++j) {
            dst[j] = 0.0;
            for (std::int64_t w = 0; w < window; ++w) dst[j] += vin.slab_ptr(r + w)[j];
          }
        }
      };
      return k;
    });

    for (std::int64_t r = 0; r < loop_end; ++r) {
      for (std::int64_t j = 0; j < m; ++j) {
        double expect = 0.0;
        for (std::int64_t w = 0; w < window; ++w) expect += in[(r + w) * m + j];
        ASSERT_DOUBLE_EQ(out[r * m + j], expect)
            << "trial " << trial << " n=" << n << " m=" << m << " chunk=" << chunk
            << " streams=" << streams << " window=" << window;
      }
    }
  }
}

TEST(ParserFuzz, GarbageNeverCrashesOnlyThrows) {
  Rng rng(0xBAD);
  const std::string alphabet = "pipeline_map(to:A[k-1:3][0,]) *+x9 ";
  for (int trial = 0; trial < 500; ++trial) {
    std::string text;
    const std::size_t len = rng.next_below(60);
    for (std::size_t i = 0; i < len; ++i)
      text += alphabet[static_cast<std::size_t>(rng.next_below(alphabet.size()))];
    try {
      (void)dsl::parse(text);  // may succeed on lucky strings
    } catch (const Error&) {
      // expected for most inputs
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace gpupipe
