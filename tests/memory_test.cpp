// Unit tests for the device/host memory allocator.
#include <gtest/gtest.h>

#include "gpu/memory.hpp"

namespace gpupipe::gpu {
namespace {

TEST(Allocator, TracksCurrentAndPeakUsage) {
  Allocator a(ExecMode::Functional, 1 * MiB, 256, 0);
  std::byte* p1 = a.allocate(1000);  // rounds to 1024
  EXPECT_EQ(a.stats().current, 1024u);
  std::byte* p2 = a.allocate(256);
  EXPECT_EQ(a.stats().current, 1280u);
  EXPECT_EQ(a.stats().peak, 1280u);
  a.deallocate(p1);
  EXPECT_EQ(a.stats().current, 256u);
  EXPECT_EQ(a.stats().peak, 1280u);  // peak is sticky
  a.deallocate(p2);
  EXPECT_EQ(a.stats().current, 0u);
  EXPECT_EQ(a.stats().allocations, 0u);
  EXPECT_EQ(a.stats().total_allocations, 2u);
}

TEST(Allocator, ThrowsOomWhenCapacityExceeded) {
  Allocator a(ExecMode::Functional, 1024, 256, 0);
  a.allocate(512);
  EXPECT_THROW(a.allocate(1024), OomError);
  // The failed allocation must not change accounting.
  EXPECT_EQ(a.stats().current, 512u);
  EXPECT_NO_THROW(a.allocate(512));
}

TEST(Allocator, UnlimitedCapacityNeverOoms) {
  Allocator a(ExecMode::Functional, 0, 64, 0);
  EXPECT_NO_THROW(a.allocate(64 * MiB));
}

TEST(Allocator, FunctionalModeReturnsWritableMemory) {
  Allocator a(ExecMode::Functional, 1 * MiB, 64, 0);
  std::byte* p = a.allocate(128);
  p[0] = std::byte{42};
  p[127] = std::byte{7};
  EXPECT_EQ(p[0], std::byte{42});
  a.deallocate(p);
}

TEST(Allocator, ModeledModeReturnsDistinctFakeAddresses) {
  Allocator a(ExecMode::Modeled, 32ULL * GiB, 256, 0x1000);
  std::byte* p1 = a.allocate(16ULL * GiB);  // far beyond physical RAM
  std::byte* p2 = a.allocate(8ULL * GiB);
  EXPECT_NE(p1, p2);
  EXPECT_GE(reinterpret_cast<std::uintptr_t>(p2),
            reinterpret_cast<std::uintptr_t>(p1) + 16ULL * GiB);
}

TEST(Allocator, ContainsAndOwnerBaseWork) {
  Allocator a(ExecMode::Modeled, 1 * MiB, 256, 0x1000);
  std::byte* p = a.allocate(512);
  EXPECT_TRUE(a.contains(p, 512));
  EXPECT_TRUE(a.contains(p + 100, 100));
  EXPECT_FALSE(a.contains(p + 100, 500));  // crosses the end
  EXPECT_EQ(a.owner_base(p + 511), p);
  EXPECT_EQ(a.owner_base(p + 512), nullptr);
  a.deallocate(p);
  EXPECT_FALSE(a.contains(p, 1));
}

TEST(Allocator, ContainsRejectsRangeSpanningTwoAllocations) {
  Allocator a(ExecMode::Modeled, 1 * MiB, 256, 0x1000);
  std::byte* p1 = a.allocate(256);
  std::byte* p2 = a.allocate(256);
  // p1 and p2 are adjacent in the fake address space, but a range crossing
  // the boundary is not contained in one allocation.
  ASSERT_EQ(p1 + 256, p2);
  EXPECT_FALSE(a.contains(p1 + 128, 256));
}

TEST(Allocator, PitchedAllocationRoundsRowWidth) {
  Allocator a(ExecMode::Modeled, 1 * MiB, 64, 0x1000);
  Pitched p = a.allocate_pitched(100, 10, 512);
  EXPECT_EQ(p.pitch, 512u);
  EXPECT_TRUE(a.contains(p.ptr, 512 * 10));
}

TEST(Allocator, DeallocateOfUnknownPointerThrows) {
  Allocator a(ExecMode::Functional, 1 * MiB, 64, 0);
  std::byte stack_var;
  EXPECT_THROW(a.deallocate(&stack_var), Error);
}

TEST(Allocator, ZeroSizeAllocationThrows) {
  Allocator a(ExecMode::Functional, 1 * MiB, 64, 0);
  EXPECT_THROW(a.allocate(0), Error);
}

TEST(Allocator, ResetPeakDropsToCurrent) {
  Allocator a(ExecMode::Functional, 1 * MiB, 64, 0);
  std::byte* p = a.allocate(1024);
  a.deallocate(p);
  EXPECT_EQ(a.stats().peak, 1024u);
  a.reset_peak();
  EXPECT_EQ(a.stats().peak, 0u);
}

}  // namespace
}  // namespace gpupipe::gpu
