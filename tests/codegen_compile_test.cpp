// End-to-end test of the source-to-source translator: CMake runs
// gpupipe_translate on tests/codegen_region.pipe, compiles the generated
// file into this binary, and this driver executes the generated region and
// validates its result. If the translator ever emits non-compiling or
// incorrect code, this test (or its build) fails.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "gpu/device_profile.hpp"
#include "gpu/gpu.hpp"

// The translator-generated entry point (see tests/codegen_region.pipe).
void generated_double_region(gpupipe::gpu::Gpu& device, double* A0, double* Anext,
                             std::int64_t nx, std::int64_t ny, std::int64_t nz);

namespace {

TEST(CodegenCompile, GeneratedRegionRunsAndComputes) {
  gpupipe::gpu::Gpu g(gpupipe::gpu::nvidia_k40m());
  const std::int64_t nz = 12, ny = 7, nx = 5;
  std::vector<double> in(nz * ny * nx), out(in.size(), 0.0);
  std::iota(in.begin(), in.end(), 1.0);

  generated_double_region(g, in.data(), out.data(), nx, ny, nz);

  for (std::size_t i = 0; i < in.size(); ++i) ASSERT_DOUBLE_EQ(out[i], 2.0 * in[i]) << i;
}

TEST(CodegenCompile, GeneratedRegionIsRepeatable) {
  gpupipe::gpu::Gpu g(gpupipe::gpu::nvidia_k40m());
  const std::int64_t nz = 6, ny = 3, nx = 4;
  std::vector<double> a(nz * ny * nx, 1.5), b(a.size(), 0.0);
  generated_double_region(g, a.data(), b.data(), nx, ny, nz);
  generated_double_region(g, b.data(), a.data(), nx, ny, nz);
  for (double v : a) ASSERT_DOUBLE_EQ(v, 6.0);
}

}  // namespace
