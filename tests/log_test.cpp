// Tests for the logging facility and the runtime's use of it.
#include <gtest/gtest.h>

#include <vector>

#include "common/log.hpp"
#include "core/pipeline.hpp"
#include "gpu/device_profile.hpp"

namespace gpupipe {
namespace {

/// RAII capture of log output; restores the previous configuration.
class LogCapture {
 public:
  explicit LogCapture(LogLevel level) : prev_level_(log_level()) {
    set_log_level(level);
    set_log_sink([this](LogLevel l, const std::string& m) { lines_.push_back({l, m}); });
  }
  ~LogCapture() {
    set_log_sink({});
    set_log_level(prev_level_);
  }
  bool contains(const std::string& needle) const {
    for (const auto& [l, m] : lines_)
      if (m.find(needle) != std::string::npos) return true;
    return false;
  }
  std::size_t count() const { return lines_.size(); }

 private:
  LogLevel prev_level_;
  std::vector<std::pair<LogLevel, std::string>> lines_;
};

TEST(Log, ParseLogLevelAcceptsTheFourNames) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
  // GPUPIPE_LOG values outside the set are ignored, not errors.
  EXPECT_EQ(parse_log_level(""), std::nullopt);
  EXPECT_EQ(parse_log_level("DEBUG"), std::nullopt);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
}

TEST(Log, ParsedNamesRoundTripThroughToString) {
  for (LogLevel l : {LogLevel::Debug, LogLevel::Info, LogLevel::Warn, LogLevel::Off})
    EXPECT_EQ(parse_log_level(to_string(l)), l);
}

TEST(Log, LevelsFilterMessages) {
  LogCapture cap(LogLevel::Info);
  log_debug("dropped");
  log_info("kept ", 42);
  log_warn("also kept");
  EXPECT_EQ(cap.count(), 2u);
  EXPECT_TRUE(cap.contains("kept 42"));
  EXPECT_FALSE(cap.contains("dropped"));
}

TEST(Log, OffSilencesEverything) {
  LogCapture cap(LogLevel::Off);
  log_warn("nope");
  EXPECT_EQ(cap.count(), 0u);
}

TEST(Log, MemoryLimitShrinkingIsLogged) {
  LogCapture cap(LogLevel::Debug);
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  std::byte* in = g.host_alloc(64 * MiB);
  std::byte* out = g.host_alloc(64 * MiB);
  core::PipelineSpec spec;
  spec.chunk_size = 256;
  spec.num_streams = 2;
  spec.loop_begin = 0;
  spec.loop_end = 1024;
  spec.mem_limit = 2 * MiB;
  spec.arrays = {
      core::ArraySpec{"in", core::MapType::To, in, 8, {1024, 1024},
                      core::SplitSpec{0, core::Affine{1, 0}, 1}},
      core::ArraySpec{"out", core::MapType::From, out, 8, {1024, 1024},
                      core::SplitSpec{0, core::Affine{1, 0}, 1}},
  };
  core::Pipeline p(g, spec);
  EXPECT_LT(p.effective_chunk_size(), 256);
  EXPECT_TRUE(cap.contains("shrinking chunk_size"));
}

TEST(Log, AdaptiveRechunkIsLogged) {
  LogCapture cap(LogLevel::Debug);
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  g.hazards().set_enabled(false);
  std::byte* in = g.host_alloc(16 * MiB);
  std::byte* out = g.host_alloc(16 * MiB);
  core::PipelineSpec spec;
  spec.schedule = core::ScheduleKind::Adaptive;
  spec.chunk_size = 1;
  spec.num_streams = 2;
  spec.loop_begin = 0;
  spec.loop_end = 512;
  spec.arrays = {
      core::ArraySpec{"in", core::MapType::To, in, 8, {512, 64},
                      core::SplitSpec{0, core::Affine{1, 0}, 1}},
      core::ArraySpec{"out", core::MapType::From, out, 8, {512, 64},
                      core::SplitSpec{0, core::Affine{1, 0}, 1}},
  };
  core::Pipeline p(g, spec);
  p.run([](const core::ChunkContext& ctx) {
    gpu::KernelDesc k;
    k.flops = static_cast<double>(ctx.iterations()) * 64;
    return k;
  });
  EXPECT_GT(p.effective_chunk_size(), 1);
  EXPECT_TRUE(cap.contains("adaptive schedule re-chunks"));
}

}  // namespace
}  // namespace gpupipe
