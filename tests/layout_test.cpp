// Unit tests for the shared chunk/ring layout arithmetic.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "core/layout.hpp"

namespace gpupipe::core::layout {
namespace {

TEST(Layout, RoundUp) {
  EXPECT_EQ(round_up<std::int64_t>(0, 8), 0);
  EXPECT_EQ(round_up<std::int64_t>(1, 8), 8);
  EXPECT_EQ(round_up<std::int64_t>(8, 8), 8);
  EXPECT_EQ(round_up<std::int64_t>(9, 8), 16);
  EXPECT_EQ(round_up<Bytes>(513, 512), 1024);
  EXPECT_EQ(round_up<std::int64_t>(7, 1), 7);
}

TEST(Layout, UnitBytes) {
  ArraySpec slab{"a", MapType::To, nullptr, 8, {10, 20, 30}, SplitSpec{0, Affine{1, 0}, 1}};
  EXPECT_EQ(unit_bytes(slab), 20 * 30 * 8);  // one outermost slab
  ArraySpec cols{"b", MapType::To, nullptr, 4, {10, 20}, SplitSpec{1, Affine{1, 0}, 1}};
  EXPECT_EQ(unit_bytes(cols), 10 * 4);  // one column
}

TEST(Layout, Halo) {
  EXPECT_EQ(halo(1, 1), 0);  // window == stride: no overhang
  EXPECT_EQ(halo(3, 1), 2);  // stencil [k-1:3]
  EXPECT_EQ(halo(3, 4), 0);  // window inside the stride
}

TEST(Layout, RingLenAffine) {
  // No halo: one stride per in-flight stream.
  EXPECT_EQ(ring_len_affine(1, 1, 4, 2), 8);
  // Halo rounds up to whole strides so a chunk's window never wraps
  // mid-chunk.
  EXPECT_EQ(ring_len_affine(1, 3, 1, 2), 4);   // stride 1, halo 2
  EXPECT_EQ(ring_len_affine(1, 3, 4, 2), 12);  // stride 4, halo 2 -> one stride
  EXPECT_EQ(ring_len_affine(2, 2, 3, 1), 6);   // scale 2: stride 6, no halo
}

TEST(Layout, WindowOfCoversTheChunkRange) {
  ArraySpec a{"a", MapType::To, nullptr, 8, {32, 4}, SplitSpec{0, Affine{1, -1}, 3}};
  const auto [lo, hi] = window_of(a, 1, 5);  // iterations 1..4
  EXPECT_EQ(lo, 0);                          // 1 - 1
  EXPECT_EQ(hi, 6);                          // (4 - 1) + 3
}

TEST(Layout, RingLenForSpecMatchesAffineFormula) {
  ArraySpec a{"a", MapType::To, nullptr, 8, {64, 4}, SplitSpec{0, Affine{1, -1}, 3}};
  EXPECT_EQ(ring_len_for_spec(a, 1, 63, 4, 2), ring_len_affine(1, 3, 4, 2));
}

TEST(Layout, RingLenForSpecScansWindowFunctions) {
  // Rows 2k..2k+2 per iteration: windows overlap by one row.
  ArraySpec a{"a", MapType::To, nullptr, 8, {64, 4},
              SplitSpec{0, {}, 1, [](std::int64_t k) {
                          return std::pair<std::int64_t, std::int64_t>{2 * k, 2 * k + 3};
                        }}};
  // Two in-flight chunks of 4 iterations: [2i, 2i+3) for i in [lo, lo+8).
  const std::int64_t need = ring_len_for_spec(a, 0, 16, 4, 2);
  EXPECT_EQ(need, 2 * 7 + 3 - 0);  // window of iters [0,8): rows [0,17)
}

TEST(Layout, RingLenForSpecRejectsBadWindowFunctions) {
  ArraySpec outside{"a", MapType::To, nullptr, 8, {8, 4},
                    SplitSpec{0, {}, 1, [](std::int64_t k) {
                                return std::pair<std::int64_t, std::int64_t>{k, k + 9};
                              }}};
  EXPECT_THROW(ring_len_for_spec(outside, 0, 4, 1, 1), Error);

  ArraySpec decreasing{"a", MapType::To, nullptr, 8, {32, 4},
                       SplitSpec{0, {}, 1, [](std::int64_t k) {
                                   return std::pair<std::int64_t, std::int64_t>{10 - k,
                                                                                12 - k};
                                 }}};
  EXPECT_THROW(ring_len_for_spec(decreasing, 0, 4, 1, 1), Error);

  ArraySpec overlapping_out{"a", MapType::From, nullptr, 8, {32, 4},
                            SplitSpec{0, {}, 1, [](std::int64_t k) {
                                        return std::pair<std::int64_t, std::int64_t>{k,
                                                                                     k + 2};
                                      }}};
  EXPECT_THROW(ring_len_for_spec(overlapping_out, 0, 4, 1, 1), Error);
}

TEST(Layout, RingSegmentsWrapDecomposition) {
  // [6, 10) in a ring of 8 wraps into [6,8) + [0,2).
  const auto segs = ring_segments(6, 10, 8);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].slot, 6);
  EXPECT_EQ(segs[0].index, 6);
  EXPECT_EQ(segs[0].count, 2);
  EXPECT_EQ(segs[1].slot, 0);
  EXPECT_EQ(segs[1].index, 8);
  EXPECT_EQ(segs[1].count, 2);

  // Aligned ranges stay whole.
  const auto one = ring_segments(8, 12, 4);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].slot, 0);
  EXPECT_EQ(one[0].count, 4);
}

TEST(Layout, PartitionWeightedSplitsProportionally) {
  EXPECT_EQ(partition_weighted(100, {1.0, 1.0}, 4), (std::vector<std::int64_t>{48, 52}));
  EXPECT_EQ(partition_weighted(90, {2.0, 1.0}, 10), (std::vector<std::int64_t>{60, 30}));
  EXPECT_EQ(partition_weighted(7, {1.0}, 2), (std::vector<std::int64_t>{7}));
  // Parts always sum to the total.
  const auto parts = partition_weighted(101, {3.0, 2.0, 1.0}, 8);
  std::int64_t sum = 0;
  for (auto p : parts) sum += p;
  EXPECT_EQ(sum, 101);
}

TEST(Layout, PartitionWeightedRejectsBadInputs) {
  EXPECT_THROW(partition_weighted(10, {}, 1), Error);
  EXPECT_THROW(partition_weighted(10, {1.0}, 0), Error);
  EXPECT_THROW(partition_weighted(10, {0.0, 0.0}, 1), Error);
  EXPECT_THROW(partition_weighted(-1, {1.0}, 1), Error);
  EXPECT_THROW(partition_weighted(10, {1.0, -0.5}, 1), Error);
}

TEST(Layout, PartitionWeightedNeverAssignsToZeroWeightParts) {
  // A disabled (weight 0) device gets nothing even when it is listed last
  // and a remainder is left over.
  EXPECT_EQ(partition_weighted(100, {1.0, 1.0, 0.0}, 4),
            (std::vector<std::int64_t>{48, 52, 0}));
  EXPECT_EQ(partition_weighted(10, {0.0, 1.0}, 4), (std::vector<std::int64_t>{0, 10}));
  // Many zero-weight parts, remainder larger than one granule.
  const auto parts = partition_weighted(103, {0.0, 3.0, 0.0, 1.0}, 8);
  EXPECT_EQ(parts[0], 0);
  EXPECT_EQ(parts[2], 0);
  EXPECT_EQ(parts[1] + parts[3], 103);
}

TEST(Layout, PartitionWeightedDoesNotStarveEarlyParts) {
  // Floor-rounding leaves every part short; the remainder is spread by
  // fractional share instead of dumped on the last part.
  EXPECT_EQ(partition_weighted(10, {1.0, 1.0, 1.0}, 1),
            (std::vector<std::int64_t>{3, 3, 4}));
  // Remainder worth several granules spreads across parts.
  const auto parts = partition_weighted(30, {1.0, 1.0, 1.0, 1.0}, 4);
  std::int64_t sum = 0;
  for (auto p : parts) {
    EXPECT_GE(p, 4);  // no part starves to zero
    sum += p;
  }
  EXPECT_EQ(sum, 30);
}

TEST(Layout, RingSegmentsRejectOversizedOrNegativeRanges) {
  // A range wider than the ring would revisit slots and emit overlapping
  // runs; the helper refuses instead.
  EXPECT_THROW(ring_segments(0, 9, 8), Error);
  EXPECT_THROW(ring_segments(4, 16, 8), Error);
  EXPECT_THROW(ring_segments(-1, 2, 8), Error);
  EXPECT_THROW(ring_segments(3, 2, 8), Error);
  // Exactly ring-sized ranges are fine.
  const auto segs = ring_segments(2, 10, 8);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].count + segs[1].count, 8);
}

TEST(Layout, WindowOfRejectsEmptyChunkRange) {
  ArraySpec a{"a", MapType::To, nullptr, 8, {32, 4}, SplitSpec{0, Affine{1, 0}, 1}};
  EXPECT_THROW(window_of(a, 3, 3), Error);
  EXPECT_THROW(window_of(a, 5, 3), Error);
}

TEST(Layout, RoundUpGuardsOverflowAndNegatives) {
  const std::int64_t top = std::numeric_limits<std::int64_t>::max();
  EXPECT_THROW(round_up<std::int64_t>(top - 2, 8), Error);
  EXPECT_THROW(round_up<std::int64_t>(-1, 8), Error);
  EXPECT_THROW(round_up<std::int64_t>(5, 0), Error);
  // The largest representable multiple passes through unchanged.
  EXPECT_EQ(round_up<std::int64_t>(top - 7, 8), top - 7);
}

TEST(Layout, RingLenForSpecRejectsDegenerateInputs) {
  ArraySpec a{"a", MapType::To, nullptr, 8, {64, 4}, SplitSpec{0, Affine{1, -1}, 3}};
  // Empty loop range.
  EXPECT_THROW(ring_len_for_spec(a, 5, 5, 1, 1), Error);
  // Affine window stepping outside the array (range_of(0) starts at -1).
  EXPECT_THROW(ring_len_for_spec(a, 0, 8, 1, 1), Error);
}

}  // namespace
}  // namespace gpupipe::core::layout
