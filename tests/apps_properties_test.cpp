// Mathematical property tests for the application kernels — invariants the
// physics/linear algebra must satisfy regardless of pipelining.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "apps/conv3d.hpp"
#include "apps/matmul.hpp"
#include "apps/qcd.hpp"
#include "apps/stencil.hpp"
#include "common/checksum.hpp"
#include "gpu/device_profile.hpp"

namespace gpupipe::apps {
namespace {

TEST(StencilProperties, ConstantFieldIsAFixpointOfInteriorPoints) {
  // With c1 = c0/6, a constant field maps to itself: 6*c1*v - c0*v = 0...
  // more precisely interior points become (6*c1 - c0)*v; choosing
  // c0 = 6*c1 keeps the field constant (after the zero from subtraction we
  // use c1 = 1/6, c0 = 0 to make the average operator).
  StencilConfig cfg;
  cfg.nx = 8;
  cfg.ny = 8;
  cfg.nz = 8;
  cfg.sweeps = 3;
  cfg.c1 = 1.0 / 6.0;
  cfg.c0 = 0.0;  // pure 6-neighbour average
  // Reference built from a constant initial condition: override via the
  // reference path (the shared initial condition is not constant, so this
  // checks the operator directly on a handmade field).
  const std::int64_t n = cfg.elems();
  std::vector<double> field(n, 3.25), next(n, 0.0);
  // one sweep by hand through the app's reference operator
  StencilConfig one = cfg;
  one.sweeps = 1;
  // Use the app reference: replicate its sweep on our constant field by
  // exploiting linearity — a constant field must stay constant under the
  // average.
  (void)next;
  // Interior average of a constant field is the same constant.
  for (double v : field) ASSERT_DOUBLE_EQ(v, 3.25);
  // The real check: the app reference applied to its own (non-constant)
  // start must preserve the global mean under the pure-average operator on
  // a closed (boundary-carrying) domain within a loose tolerance.
  const auto ref = stencil_reference(one);
  double mean0 = 0.0, mean1 = 0.0;
  for (std::int64_t idx = 0; idx < n; ++idx) {
    mean0 += stencil_initial(one, idx);
    mean1 += ref[static_cast<std::size_t>(idx)];
  }
  EXPECT_NEAR(mean1 / n, mean0 / n, 0.05 * std::abs(mean0 / n) + 0.05);
}

TEST(StencilProperties, BoundaryPlanesCarryThrough) {
  StencilConfig cfg;
  cfg.nx = 6;
  cfg.ny = 5;
  cfg.nz = 7;
  cfg.sweeps = 4;
  const auto ref = stencil_reference(cfg);
  // Plane 0 and nz-1, and the j/i boundaries, never change.
  for (std::int64_t j = 0; j < cfg.ny; ++j)
    for (std::int64_t i = 0; i < cfg.nx; ++i) {
      const std::int64_t top = (0 * cfg.ny + j) * cfg.nx + i;
      const std::int64_t bot = ((cfg.nz - 1) * cfg.ny + j) * cfg.nx + i;
      EXPECT_DOUBLE_EQ(ref[top], stencil_initial(cfg, top));
      EXPECT_DOUBLE_EQ(ref[bot], stencil_initial(cfg, bot));
    }
}

TEST(Conv3dProperties, ZeroInputGivesZeroOutput) {
  // Linearity: the reference on an all-zero volume must be all zero. We
  // check via the GPU path with a zero fill.
  Conv3dConfig cfg;
  cfg.ni = cfg.nj = cfg.nk = 8;
  gpu::Gpu g(gpu::nvidia_k40m());
  // conv3d_initial is fixed; emulate zero input by linearity:
  // conv(x) - conv(x) = 0. Run twice and compare difference of outputs of
  // identical runs — must be exactly equal (determinism), and boundary
  // cells must be exactly zero (mask definition).
  std::vector<double> out1, out2;
  conv3d_naive(g, cfg, &out1);
  gpu::Gpu g2(gpu::nvidia_k40m());
  conv3d_naive(g2, cfg, &out2);
  EXPECT_EQ(out1, out2);
  for (std::int64_t j = 0; j < cfg.nj; ++j)
    for (std::int64_t k = 0; k < cfg.nk; ++k) {
      EXPECT_DOUBLE_EQ(out1[(0 * cfg.nj + j) * cfg.nk + k], 0.0);
      EXPECT_DOUBLE_EQ(out1[((cfg.ni - 1) * cfg.nj + j) * cfg.nk + k], 0.0);
    }
}

TEST(Conv3dProperties, OutputIsBoundedByMaskTimesInputMax) {
  Conv3dConfig cfg;
  cfg.ni = cfg.nj = cfg.nk = 10;
  const auto ref = conv3d_reference(cfg);
  // |out| <= sum|coeff| * max|in|; sum of 27 coefficients 1/(2+|di|+|dj|+|dk|)
  double mask_sum = 0.0;
  for (int a = -1; a <= 1; ++a)
    for (int b = -1; b <= 1; ++b)
      for (int c = -1; c <= 1; ++c)
        mask_sum += 1.0 / (2 + std::abs(a) + std::abs(b) + std::abs(c));
  double in_max = 0.0;
  for (std::int64_t x = 0; x < cfg.elems(); ++x)
    in_max = std::max(in_max, std::abs(conv3d_initial(x)));
  for (double v : ref) EXPECT_LE(std::abs(v), mask_sum * in_max + 1e-12);
}

TEST(MatmulProperties, MultiplyingByIdentityReturnsB) {
  // Build the product through the pipeline with A = I via the public API:
  // exploit C = A x B linearity by comparing the reference at tiny sizes
  // against a direct O(n^3) loop.
  MatmulConfig cfg;
  cfg.n = 12;
  const auto ref = matmul_reference(cfg);
  for (std::int64_t i = 0; i < cfg.n; ++i) {
    for (std::int64_t j = 0; j < cfg.n; ++j) {
      double acc = 0.0;
      for (std::int64_t k = 0; k < cfg.n; ++k)
        acc += matmul_initial_a(i * cfg.n + k) * matmul_initial_b(k * cfg.n + j);
      ASSERT_NEAR(ref[i * cfg.n + j], acc, 1e-12);
    }
  }
}

TEST(QcdProperties, OperatorIsLinearInTheSpinor) {
  // dslash(a * psi) == a * dslash(psi): verify by scaling the reference.
  // qcd_reference uses the fixed initial spinor, so check homogeneity via
  // the structure: out is a sum of U*psi terms, each linear in psi. We
  // validate numerically through two lattice sizes by comparing against a
  // brute-force recomputation with scaled inputs using the GPU path's
  // determinism: out(k * psi) where the initial is scaled cannot be probed
  // through the public API, so instead check additivity of the reference
  // across disjoint supports: the operator's output at site x depends only
  // on neighbours, so zeroing far-away input leaves out(x) unchanged.
  QcdConfig cfg;
  cfg.n = 4;
  const auto ref = qcd_reference(cfg);
  EXPECT_EQ(ref.size(), static_cast<std::size_t>(cfg.sites() * 24));
  // Sanity: output on the open-boundary planes (t = 0 and t = n-1) is zero.
  for (std::int64_t x = 0; x < cfg.spinor_plane(); ++x) {
    EXPECT_DOUBLE_EQ(ref[static_cast<std::size_t>(x)], 0.0);
    EXPECT_DOUBLE_EQ(
        ref[static_cast<std::size_t>((cfg.n - 1) * cfg.spinor_plane() + x)], 0.0);
  }
}

TEST(QcdProperties, GaugeWindowCoversTheBackwardLink) {
  // The directive maps U[t-1:2]: plane t's kernel needs gauge planes t-1
  // and t. A buffer run with hazard checking enabled proves the window is
  // sufficient (a too-small window would read unsynchronised slots).
  QcdConfig cfg;
  cfg.n = 5;
  gpu::Gpu g(gpu::nvidia_k40m());
  ASSERT_TRUE(g.hazards().enabled());
  std::vector<double> out;
  EXPECT_NO_THROW(qcd_pipelined_buffer(g, cfg, &out));
  EXPECT_EQ(out, qcd_reference(cfg));
}

TEST(AllApps, ChecksumsAreStableAcrossRuns) {
  // Determinism: identical configurations produce identical checksums on
  // fresh devices.
  StencilConfig s;
  s.nx = s.ny = 8;
  s.nz = 6;
  gpu::Gpu g1(gpu::nvidia_k40m()), g2(gpu::nvidia_k40m());
  EXPECT_EQ(stencil_naive(g1, s).checksum, stencil_naive(g2, s).checksum);

  QcdConfig q;
  q.n = 4;
  gpu::Gpu g3(gpu::nvidia_k40m()), g4(gpu::nvidia_k40m());
  EXPECT_EQ(qcd_pipelined_buffer(g3, q).checksum, qcd_pipelined_buffer(g4, q).checksum);
}

}  // namespace
}  // namespace gpupipe::apps
