// Tests for the telemetry layer: the metrics registry primitives
// (common/metrics.hpp), the pull-based collectors and the trace<->plan join
// (core/telemetry.hpp), snapshot determinism across plan-optimization
// levels, and the near-zero disabled path.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <sstream>
#include <vector>

#include "common/metrics.hpp"
#include "core/pipeline.hpp"
#include "core/telemetry.hpp"
#include "gpu/device_profile.hpp"

namespace gpupipe::core {
namespace {

using telemetry::Registry;

// --- Registry primitives ---

TEST(Registry, CountersGaugesHistograms) {
  Registry reg;
  reg.counter("a").add();
  reg.counter("a").add(4);
  reg.gauge("g").set(2.5);
  reg.gauge("g").set_max(1.0);  // no-op: smaller
  reg.gauge("g").set_max(7.0);
  auto& h = reg.histogram("h", {0.25, 0.5, 0.75, 1.0});
  h.observe(0.1);
  h.observe(0.5);   // lands in the (0.25, 0.5] bucket
  h.observe(0.51);  // lands in the (0.5, 0.75] bucket
  h.observe(2.0);   // +inf tail

  EXPECT_EQ(reg.counter_value("a"), 5);
  EXPECT_EQ(reg.counter_value("missing"), 0);
  EXPECT_DOUBLE_EQ(reg.gauge_value("g"), 7.0);
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 0.1 + 0.5 + 0.51 + 2.0);
  ASSERT_EQ(h.buckets().size(), 5u);
  EXPECT_EQ(h.buckets()[0], 1);
  EXPECT_EQ(h.buckets()[1], 1);
  EXPECT_EQ(h.buckets()[2], 1);
  EXPECT_EQ(h.buckets()[3], 0);
  EXPECT_EQ(h.buckets()[4], 1);
  EXPECT_FALSE(reg.empty());
  reg.clear();
  EXPECT_TRUE(reg.empty());
}

TEST(Registry, JsonSnapshotIsWellFormedAndDeterministic) {
  Registry reg;
  reg.counter("z.count").add(3);
  reg.counter("a.count").add(1);
  reg.gauge("m.ratio").set(0.5);
  reg.histogram("occ", {0.5, 1.0}).observe(0.7);

  std::ostringstream os1, os2;
  reg.to_json(os1);
  reg.to_json(os2);
  const std::string json = os1.str();
  EXPECT_EQ(json, os2.str());  // snapshotting is repeatable
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  // Counters iterate in sorted name order.
  EXPECT_LT(json.find("\"a.count\":1"), json.find("\"z.count\":3"));
  EXPECT_NE(json.find("\"m.ratio\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"le\":\"inf\""), std::string::npos);
}

// --- Pipeline fixtures ---

/// Three-point stencil over the split dimension (window 3): overlapping
/// chunk windows give the halo-reuse pass real bytes to elide.
PipelineSpec stencil_spec(std::vector<double>& in, std::vector<double>& out,
                          std::int64_t n, std::int64_t m, int opt_level) {
  PipelineSpec spec;
  spec.chunk_size = 2;
  spec.num_streams = 2;
  spec.loop_begin = 1;
  spec.loop_end = n - 1;
  spec.opt_level = opt_level;
  spec.arrays = {
      ArraySpec{"in", MapType::To, reinterpret_cast<std::byte*>(in.data()), sizeof(double),
                {n, m}, SplitSpec{0, Affine{1, -1}, 3}},
      ArraySpec{"out", MapType::From, reinterpret_cast<std::byte*>(out.data()),
                sizeof(double), {n, m}, SplitSpec{0, Affine{1, 0}, 1}},
  };
  return spec;
}

KernelFactory stencil_kernel(std::int64_t m) {
  return [m](const ChunkContext& ctx) {
    gpu::KernelDesc k;
    k.name = "stencil";
    k.flops = static_cast<double>(ctx.iterations() * m * 2);
    k.bytes = static_cast<Bytes>(ctx.iterations() * m) * 4 * sizeof(double);
    const BufferView in_v = ctx.view("in");
    const BufferView out_v = ctx.view("out");
    const std::int64_t lo = ctx.begin(), hi = ctx.end();
    k.body = [in_v, out_v, lo, hi, m] {
      for (std::int64_t r = lo; r < hi; ++r) {
        double* dst = out_v.slab_ptr(r);
        for (std::int64_t j = 0; j < m; ++j)
          dst[j] = in_v.slab_ptr(r - 1)[j] + in_v.slab_ptr(r)[j] + in_v.slab_ptr(r + 1)[j];
      }
    };
    return k;
  };
}

struct RunResult {
  Registry reg;
  std::vector<double> out;
};

RunResult run_stencil(int opt_level) {
  gpu::Gpu g(gpu::nvidia_k40m());
  const std::int64_t n = 24, m = 8;
  std::vector<double> in(n * m), out(n * m, 0.0);
  std::iota(in.begin(), in.end(), 1.0);
  Pipeline p(g, stencil_spec(in, out, n, m, opt_level));
  p.run(stencil_kernel(m));
  RunResult r;
  p.collect_metrics(r.reg);
  collect_trace_metrics(r.reg, g.trace());
  collect_device_metrics(r.reg, g);
  r.out = out;
  return r;
}

// --- Trace <-> plan join ---

TEST(Telemetry, EveryDeviceSpanCarriesItsPlanNode) {
  gpu::Gpu g(gpu::nvidia_k40m());
  const std::int64_t n = 24, m = 8;
  std::vector<double> in(n * m), out(n * m, 0.0);
  std::iota(in.begin(), in.end(), 1.0);
  Pipeline p(g, stencil_spec(in, out, n, m, 1));
  p.run(stencil_kernel(m));

  const ExecutionPlan& plan = p.execution_plan();
  Bytes trace_h2d = 0;
  for (const sim::Span& s : g.trace().spans()) {
    if (s.kind != sim::SpanKind::H2D && s.kind != sim::SpanKind::D2H &&
        s.kind != sim::SpanKind::Kernel)
      continue;
    EXPECT_GE(s.node, 0) << g.trace().label(s);
    EXPECT_LT(s.node, static_cast<std::int64_t>(plan.nodes.size()));
    if (s.kind == sim::SpanKind::H2D) trace_h2d += s.bytes;
  }

  // Folding the spans back onto nodes recovers the plan's transfer volume
  // and attributes at least one span to every kernel node.
  const std::vector<NodeCost> costs = attribute_spans(plan, g.trace());
  Bytes attributed_h2d = 0;
  for (const PlanNode& node : plan.nodes) {
    const NodeCost& c = costs[static_cast<std::size_t>(node.id)];
    if (node.op == PlanOp::Kernel) {
      EXPECT_GE(c.spans, 1) << node.id;
    }
    if (node.op == PlanOp::H2D) attributed_h2d += c.bytes;
  }
  EXPECT_EQ(attributed_h2d, trace_h2d);
  EXPECT_EQ(attributed_h2d, plan.transfer_bytes(PlanOp::H2D));
}

TEST(Telemetry, TraceH2dBytesMatchPlanPostOptBytesExactly) {
  for (int opt : {0, 1, 2}) {
    const RunResult r = run_stencil(opt);
    EXPECT_EQ(r.reg.counter_value("trace.h2d_bytes"), r.reg.counter_value("plan.h2d_bytes"))
        << "opt level " << opt;
    EXPECT_EQ(r.reg.counter_value("trace.h2d_bytes"),
              r.reg.counter_value("stats.h2d_bytes"))
        << "opt level " << opt;
    EXPECT_EQ(r.reg.counter_value("trace.d2h_bytes"), r.reg.counter_value("plan.d2h_bytes"))
        << "opt level " << opt;
  }
}

TEST(Telemetry, SnapshotDeterministicAcrossOptLevels) {
  const RunResult r0 = run_stencil(0);
  const RunResult r1 = run_stencil(1);
  const RunResult r2 = run_stencil(2);

  // Optimization never changes semantics: identical results...
  EXPECT_EQ(r0.out, r1.out);
  EXPECT_EQ(r1.out, r2.out);
  // ...and identical logical work counters.
  for (const char* name : {"stats.chunks", "stats.kernels", "stats.d2h_bytes",
                           "plan.kernel_nodes", "plan.d2h_bytes"}) {
    EXPECT_EQ(r0.reg.counter_value(name), r1.reg.counter_value(name)) << name;
    EXPECT_EQ(r1.reg.counter_value(name), r2.reg.counter_value(name)) << name;
  }
  // H2D volume differs exactly by what the passes report as elided.
  const std::int64_t h2d0 = r0.reg.counter_value("trace.h2d_bytes");
  const std::int64_t h2d1 = r1.reg.counter_value("trace.h2d_bytes");
  const std::int64_t h2d2 = r2.reg.counter_value("trace.h2d_bytes");
  EXPECT_EQ(r0.reg.counter_value("opt.h2d_bytes_saved"), 0);
  EXPECT_GT(r1.reg.counter_value("opt.h2d_bytes_saved"), 0);
  EXPECT_EQ(h2d0 - h2d1, r1.reg.counter_value("opt.h2d_bytes_saved"));
  EXPECT_EQ(h2d0 - h2d2, r2.reg.counter_value("opt.h2d_bytes_saved"));
  // Same collection twice is byte-identical (snapshot determinism).
  std::ostringstream a, b;
  run_stencil(1).reg.to_json(a);
  r1.reg.to_json(b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(Telemetry, CollectMetricsHonoursPrefixAndEmitsGauges) {
  gpu::Gpu g(gpu::nvidia_k40m());
  const std::int64_t n = 24, m = 8;
  std::vector<double> in(n * m), out(n * m, 0.0);
  std::iota(in.begin(), in.end(), 1.0);
  Pipeline p(g, stencil_spec(in, out, n, m, 1));
  p.run(stencil_kernel(m));

  Registry reg;
  p.collect_metrics(reg, "dev0.");
  EXPECT_GT(reg.counter_value("dev0.plan.nodes"), 0);
  EXPECT_GT(reg.counter_value("dev0.ring.in.h2d_bytes"), 0);
  EXPECT_GT(reg.gauge_value("dev0.pipeline.chunk_size"), 0.0);
  EXPECT_GT(reg.gauge_value("dev0.pipeline.buffer_footprint_bytes"), 0.0);
  EXPECT_EQ(reg.histograms().count("dev0.plan.ring_occupancy"), 1u);
  EXPECT_GT(reg.histograms().at("dev0.plan.ring_occupancy").count(), 0);
  // Unprefixed names were not created.
  EXPECT_EQ(reg.counter_value("plan.nodes"), 0);
}

TEST(Telemetry, SimCoreCapacityMetricsAreSaneAfterADrainedRun) {
  gpu::Gpu g(gpu::nvidia_k40m());
  const std::int64_t n = 24, m = 8;
  std::vector<double> in(n * m), out(n * m, 0.0);
  std::iota(in.begin(), in.end(), 1.0);
  Pipeline p(g, stencil_spec(in, out, n, m, 1));
  p.run(stencil_kernel(m));

  Registry reg;
  p.collect_metrics(reg, "dev0.");
  // The run executed events and created tasks...
  EXPECT_GT(reg.counter_value("dev0.sim.events_executed"), 0);
  EXPECT_GT(reg.counter_value("dev0.sim.arena.tasks_created"), 0);
  EXPECT_GT(reg.gauge_value("dev0.sim.arena.labels_interned"), 0.0);
  // ...the queue is drained, and the only tasks still alive are the stream
  // tails (each stream pins its last task as the dependency anchor for the
  // next submission) — far below the in-flight peak...
  EXPECT_EQ(reg.gauge_value("dev0.sim.events_pending"), 0.0);
  EXPECT_LT(reg.gauge_value("dev0.sim.arena.tasks_live"),
            reg.gauge_value("dev0.sim.arena.tasks_high_water"));
  // ...and the arena is sized by the high-water mark, never below it. (The
  // event pool gauge counts inline-callable slots only; the task lifecycle
  // events this run schedules are all tagged, so it stays 0 here.)
  EXPECT_GT(reg.gauge_value("dev0.sim.events_high_water"), 0.0);
  EXPECT_GT(reg.gauge_value("dev0.sim.arena.tasks_high_water"), 0.0);
  EXPECT_GE(reg.gauge_value("dev0.sim.arena.task_slots"),
            reg.gauge_value("dev0.sim.arena.tasks_high_water"));
}

// --- Annotation (measured vs modelled) ---

TEST(Telemetry, AnnotateJoinsMeasuredAndModelledTimelines) {
  gpu::Gpu g(gpu::nvidia_k40m(), gpu::ExecMode::Modeled);
  g.hazards().set_enabled(false);
  const std::int64_t n = 24, m = 8;
  std::vector<double> in(n * m), out(n * m);
  Pipeline p(g, stencil_spec(in, out, n, m, 1));
  const double fpi = static_cast<double>(m) * 2.0;
  const double bpi = static_cast<double>(m) * 4.0 * sizeof(double);
  p.run([&](const ChunkContext& ctx) {
    gpu::KernelDesc k;
    k.name = "stencil";
    k.flops = fpi * static_cast<double>(ctx.iterations());
    k.bytes = static_cast<Bytes>(bpi * static_cast<double>(ctx.iterations()));
    return k;
  });

  DryRunCost cost;
  cost.flops_per_iter = fpi;
  cost.bytes_per_iter = bpi;
  cost.live_streams = p.effective_streams();
  const DryRunResult dry = dry_run(p.execution_plan(), g.profile(), cost);
  const PlanAnnotation ann = annotate_plan(p.execution_plan(), g.trace(), dry.trace);

  EXPECT_GT(ann.compared, 0);
  EXPECT_FALSE(ann.rows.empty());
  // The dry run reuses the Gpu's engine topology and cost curves, so the
  // modelled timeline should essentially reproduce the measured one.
  EXPECT_LT(ann.mean_rel_error, 0.05);
  for (const PlanAnnotation::Row& row : ann.rows)
    EXPECT_TRUE(row.op == PlanOp::H2D || row.op == PlanOp::D2H ||
                row.op == PlanOp::Kernel);

  std::ostringstream os;
  print_annotation(os, ann);
  EXPECT_NE(os.str().find("mean relative model error"), std::string::npos);
  EXPECT_NE(os.str().find("measured (ms)"), std::string::npos);
}

// --- Disabled path ---

TEST(Telemetry, AmbientCountersAreGatedOnMetricsEnabled) {
  telemetry::global_metrics().clear();
  telemetry::set_metrics_enabled(false);
  {
    gpu::Gpu g(gpu::nvidia_k40m());
    const std::int64_t n = 24, m = 8;
    std::vector<double> in(n * m), out(n * m, 0.0);
    std::iota(in.begin(), in.end(), 1.0);
    // A tight memory limit forces the solver to shrink the chunk size —
    // the rare event the ambient counter records when enabled.
    PipelineSpec spec = stencil_spec(in, out, n, m, 1);
    spec.chunk_size = 8;
    spec.mem_limit = 1024;
    Pipeline p(g, spec);
    p.run(stencil_kernel(m));
    EXPECT_TRUE(telemetry::global_metrics().empty());
  }
  telemetry::set_metrics_enabled(true);
  {
    gpu::Gpu g(gpu::nvidia_k40m());
    const std::int64_t n = 24, m = 8;
    std::vector<double> in(n * m), out(n * m, 0.0);
    std::iota(in.begin(), in.end(), 1.0);
    PipelineSpec spec = stencil_spec(in, out, n, m, 1);
    spec.chunk_size = 8;
    spec.mem_limit = 1024;
    Pipeline p(g, spec);
    p.run(stencil_kernel(m));
    EXPECT_GT(telemetry::global_metrics().counter_value("pipeline.chunk_shrink_events") +
                  telemetry::global_metrics().counter_value("pipeline.stream_drop_events"),
              0);
  }
  telemetry::set_metrics_enabled(false);
  telemetry::global_metrics().clear();
}

}  // namespace
}  // namespace gpupipe::core
