// Odds-and-ends coverage: smaller API surfaces not exercised elsewhere.
#include <gtest/gtest.h>

#include <numeric>
#include <sstream>
#include <vector>

#include "acc/acc.hpp"
#include "core/pipeline.hpp"
#include "core/tile_pipeline.hpp"
#include "gpu/device_profile.hpp"

namespace gpupipe {
namespace {

TEST(Coverage, PipelineSplitPhaseEnqueueWait) {
  gpu::Gpu g(gpu::nvidia_k40m());
  const std::int64_t n = 16, m = 8;
  std::vector<double> in(n * m, 2.0), out(n * m, 0.0);
  core::PipelineSpec spec;
  spec.chunk_size = 2;
  spec.num_streams = 2;
  spec.loop_begin = 0;
  spec.loop_end = n;
  spec.arrays = {
      core::ArraySpec{"in", core::MapType::To, reinterpret_cast<std::byte*>(in.data()),
                      sizeof(double), {n, m}, core::SplitSpec{0, core::Affine{1, 0}, 1}},
      core::ArraySpec{"out", core::MapType::From, reinterpret_cast<std::byte*>(out.data()),
                      sizeof(double), {n, m}, core::SplitSpec{0, core::Affine{1, 0}, 1}},
  };
  core::Pipeline p(g, spec);
  p.enqueue([m](const core::ChunkContext& ctx) {
    gpu::KernelDesc k;
    const core::BufferView vi = ctx.view("in");
    const core::BufferView vo = ctx.view("out");
    const std::int64_t lo = ctx.begin(), hi = ctx.end();
    k.body = [vi, vo, lo, hi, m] {
      for (std::int64_t r = lo; r < hi; ++r)
        for (std::int64_t j = 0; j < m; ++j) vo.slab_ptr(r)[j] = vi.slab_ptr(r)[j] + 1.0;
    };
    return k;
  });
  // Enqueue returns before completion; wait() drains.
  p.wait();
  for (double v : out) ASSERT_DOUBLE_EQ(v, 3.0);

  // Split-phase execution is static-schedule only.
  spec.schedule = core::ScheduleKind::Adaptive;
  core::Pipeline ap(g, spec);
  EXPECT_THROW(ap.enqueue([](const core::ChunkContext&) { return gpu::KernelDesc{}; }),
               Error);
}

TEST(Coverage, AccSynchronousUpdates) {
  gpu::Gpu g(gpu::nvidia_k40m());
  acc::AccRuntime rt(g);
  std::vector<double> host(32);
  std::iota(host.begin(), host.end(), 0.0);
  double* dev = g.device_alloc<double>(32);
  rt.update_device(reinterpret_cast<std::byte*>(dev),
                   reinterpret_cast<std::byte*>(host.data()), 32 * sizeof(double));
  for (int i = 0; i < 32; ++i) ASSERT_DOUBLE_EQ(dev[i], host[static_cast<std::size_t>(i)]);
  std::fill(host.begin(), host.end(), 0.0);
  rt.update_self(reinterpret_cast<std::byte*>(host.data()),
                 reinterpret_cast<std::byte*>(dev), 32 * sizeof(double));
  for (int i = 0; i < 32; ++i) ASSERT_DOUBLE_EQ(host[static_cast<std::size_t>(i)], i);
}

TEST(Coverage, HostRegisterErrorPaths) {
  gpu::Gpu g(gpu::nvidia_k40m());
  std::vector<double> a(64), b(64);
  auto* pa = reinterpret_cast<std::byte*>(a.data());
  g.host_register(pa, 64 * sizeof(double));
  EXPECT_TRUE(g.is_pinned(pa + 100));
  EXPECT_THROW(g.host_register(pa + 8, 16), Error);  // overlap
  g.host_unregister(pa);
  EXPECT_FALSE(g.is_pinned(pa));
  EXPECT_THROW(g.host_unregister(pa), Error);  // double unregister
  EXPECT_THROW(g.host_register(nullptr, 16), Error);
  (void)b;
}

TEST(Coverage, Copy2dPitchValidation) {
  gpu::Gpu g(gpu::nvidia_k40m());
  std::byte* host = g.host_alloc(4096);
  gpu::Pitched dev = g.device_malloc_pitched(64, 8);
  // Source pitch smaller than the row width is malformed.
  EXPECT_THROW(
      g.memcpy2d_h2d_async(dev.ptr, dev.pitch, host, /*spitch=*/32, /*width=*/64, 8,
                           g.default_stream()),
      Error);
  EXPECT_THROW(
      g.memcpy2d_h2d_async(dev.ptr, /*dpitch=*/32, host, 64, /*width=*/64, 8,
                           g.default_stream()),
      Error);
}

TEST(Coverage, TraceTextDumpIsSorted) {
  sim::Trace trace;
  trace.record(sim::SpanKind::Kernel, "s0", "late", 2.0, 3.0, 0);
  trace.record(sim::SpanKind::H2D, "s0", "early", 0.0, 1.0, 16);
  std::ostringstream os;
  trace.dump(os);
  const std::string out = os.str();
  EXPECT_LT(out.find("early"), out.find("late"));
}

TEST(Coverage, TileContextRejectsUnknownArray) {
  gpu::Gpu g(gpu::nvidia_k40m());
  std::vector<double> data(16, 1.0);
  core::TileSpec spec;
  spec.ni = spec.nj = 1;
  spec.arrays = {core::TileArraySpec{"in", core::MapType::To,
                                     reinterpret_cast<std::byte*>(data.data()),
                                     sizeof(double), 4, 4,
                                     core::TileDimSpec{core::Affine{4, 0}, 4},
                                     core::TileDimSpec{core::Affine{4, 0}, 4}}};
  core::TilePipeline p(g, spec);
  EXPECT_THROW(p.run([](const core::TileContext& ctx) {
    (void)ctx.view("missing");
    return gpu::KernelDesc{};
  }),
               Error);
}

TEST(Coverage, PipelineRebindValidation) {
  gpu::Gpu g(gpu::nvidia_k40m());
  std::vector<double> in(8, 1.0), out(8);
  core::PipelineSpec spec;
  spec.loop_begin = 0;
  spec.loop_end = 8;
  spec.arrays = {core::ArraySpec{"in", core::MapType::To,
                                 reinterpret_cast<std::byte*>(in.data()), sizeof(double),
                                 {8, 1}, core::SplitSpec{0, core::Affine{1, 0}, 1}}};
  core::Pipeline p(g, spec);
  EXPECT_THROW(p.rebind_host("nope", reinterpret_cast<std::byte*>(out.data())), Error);
  EXPECT_THROW(p.rebind_host("in", nullptr), Error);
}

TEST(Coverage, DefaultStreamSynchronousWrappersAdvanceTime) {
  gpu::Gpu g(gpu::nvidia_k40m());
  std::byte* host = g.host_alloc(4 * MiB);
  std::byte* dev = g.device_malloc(4 * MiB);
  const SimTime t0 = g.host_now();
  g.memcpy_h2d(dev, host, 4 * MiB);
  const SimTime after_h2d = g.host_now();
  EXPECT_GT(after_h2d, t0);  // synchronous: the host waited
  g.memcpy_d2h(host, dev, 4 * MiB);
  EXPECT_GT(g.host_now(), after_h2d);
}

}  // namespace
}  // namespace gpupipe
