// Unit tests for the OpenACC-flavoured baseline layer.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "acc/acc.hpp"
#include "gpu/device_profile.hpp"

namespace gpupipe::acc {
namespace {

gpu::DeviceProfile profile() { return gpu::nvidia_k40m(); }

TEST(AccDataRegion, CopyInCopyOutSemantics) {
  gpu::Gpu g(profile());
  AccRuntime rt(g);
  std::vector<double> in(64), out(64, 0.0);
  std::iota(in.begin(), in.end(), 0.0);
  {
    auto region = rt.data_region({
        {DataKind::CopyIn, reinterpret_cast<std::byte*>(in.data()), 64 * sizeof(double)},
        {DataKind::CopyOut, reinterpret_cast<std::byte*>(out.data()), 64 * sizeof(double)},
    });
    const double* din = region.device_ptr(in.data());
    double* dout = region.device_ptr(out.data());
    gpu::KernelDesc k;
    k.flops = 64;
    k.body = [din, dout] {
      for (int i = 0; i < 64; ++i) dout[i] = din[i] + 1.0;
    };
    rt.parallel_loop(std::move(k));
    // Not copied back until region exit.
    EXPECT_DOUBLE_EQ(out[0], 0.0);
  }
  for (int i = 0; i < 64; ++i) EXPECT_DOUBLE_EQ(out[i], in[i] + 1.0);
}

TEST(AccDataRegion, DevicePtrHandlesInteriorPointers) {
  gpu::Gpu g(profile());
  AccRuntime rt(g);
  std::vector<double> data(100, 1.0);
  auto region = rt.data_region(
      {{DataKind::CopyIn, reinterpret_cast<std::byte*>(data.data()), 100 * sizeof(double)}});
  const double* base = region.device_ptr(data.data());
  const double* mid = region.device_ptr(data.data() + 50);
  EXPECT_EQ(mid, base + 50);
}

TEST(AccDataRegion, UnmappedPointerThrows) {
  gpu::Gpu g(profile());
  AccRuntime rt(g);
  std::vector<double> data(10, 1.0), other(10);
  auto region = rt.data_region(
      {{DataKind::CopyIn, reinterpret_cast<std::byte*>(data.data()), 10 * sizeof(double)}});
  EXPECT_THROW(region.device_ptr(other.data()), Error);
}

TEST(AccDataRegion, CreateAllocatesWithoutCopying) {
  gpu::Gpu g(profile());
  AccRuntime rt(g);
  std::vector<double> data(1024, 7.0);
  const SimTime before = g.host_now();
  auto region = rt.data_region(
      {{DataKind::Create, reinterpret_cast<std::byte*>(data.data()), 1024 * sizeof(double)}});
  (void)region;
  // No transfer happened: only API/clause overhead elapsed.
  EXPECT_LT(g.host_now() - before, msec(0.1));
  EXPECT_EQ(g.trace().time_by_kind().count(sim::SpanKind::H2D), 0u);
}

TEST(AccDataRegion, FailedClauseReleasesEarlierAllocations) {
  gpu::Gpu g(profile());
  AccRuntime rt(g);
  const Bytes huge = g.device_mem_free();
  std::vector<double> small(16, 0.0);
  const Bytes before = g.device_mem_stats().current;
  EXPECT_THROW(
      rt.data_region({
          {DataKind::Create, reinterpret_cast<std::byte*>(small.data()), 16 * sizeof(double)},
          {DataKind::Create, reinterpret_cast<std::byte*>(small.data()), huge},
      }),
      gpu::OomError);
  EXPECT_EQ(g.device_mem_stats().current, before);  // nothing leaked
}

TEST(AccAsync, QueuesMapToDistinctStreams) {
  gpu::Gpu g(profile());
  AccRuntime rt(g);
  gpu::Stream& q0 = rt.queue_stream(0);
  gpu::Stream& q7 = rt.queue_stream(7);
  EXPECT_NE(&q0, &q7);
  EXPECT_EQ(&q0, &rt.queue_stream(0));  // stable mapping
  EXPECT_EQ(rt.live_queues(), 2);
  EXPECT_EQ(g.live_streams(), 2);
}

TEST(AccAsync, UpdateAndKernelPipelineProducesCorrectData) {
  gpu::Gpu g(profile());
  AccRuntime rt(g);
  constexpr int kN = 256;
  std::vector<double> in(kN), out(kN, 0.0);
  std::iota(in.begin(), in.end(), 0.0);
  double* dev_in = g.device_alloc<double>(kN);
  double* dev_out = g.device_alloc<double>(kN);

  // Two chunks on two queues.
  for (int chunk = 0; chunk < 2; ++chunk) {
    const int lo = chunk * kN / 2, hi = (chunk + 1) * kN / 2;
    rt.update_device_async(chunk, reinterpret_cast<std::byte*>(dev_in + lo),
                           reinterpret_cast<std::byte*>(in.data() + lo),
                           (hi - lo) * sizeof(double));
    gpu::KernelDesc k;
    k.flops = kN / 2;
    k.body = [dev_in, dev_out, lo, hi] {
      for (int i = lo; i < hi; ++i) dev_out[i] = 3.0 * dev_in[i];
    };
    rt.parallel_loop_async(chunk, std::move(k));
    rt.update_self_async(chunk, reinterpret_cast<std::byte*>(out.data() + lo),
                         reinterpret_cast<std::byte*>(dev_out + lo),
                         (hi - lo) * sizeof(double));
  }
  rt.wait();
  for (int i = 0; i < kN; ++i) ASSERT_DOUBLE_EQ(out[i], 3.0 * in[i]);
}

TEST(AccAsync, WaitOnSingleQueueDrainsOnlyIt) {
  gpu::Gpu g(profile());
  AccRuntime rt(g);
  std::vector<double> host(1 << 20, 1.0);
  double* dev = g.device_alloc<double>(1 << 20);
  rt.update_device_async(0, reinterpret_cast<std::byte*>(dev),
                         reinterpret_cast<std::byte*>(host.data()), (1 << 20) * sizeof(double));
  gpu::KernelDesc slow;
  slow.fixed_duration = 1.0;
  rt.parallel_loop_async(1, std::move(slow));
  rt.wait(0);
  EXPECT_LT(g.host_now(), 0.5);  // did not wait for the slow queue-1 kernel
  rt.wait();
  EXPECT_GE(g.host_now(), 1.0);
}

TEST(AccOverhead, AsyncOpCostScalesWithLiveQueues) {
  AccConfig cfg;
  cfg.queue_mgmt_overhead = usec(100.0);
  cfg.update_section_overhead = 0.0;

  auto host_cost_with_queues = [&](int queues) {
    gpu::Gpu g(profile());
    AccRuntime rt(g, cfg);
    for (int q = 0; q < queues; ++q) rt.queue_stream(q);
    std::vector<double> host(16, 0.0);
    double* dev = g.device_alloc<double>(16);
    const SimTime t0 = g.host_now();
    rt.update_device_async(0, reinterpret_cast<std::byte*>(dev),
                           reinterpret_cast<std::byte*>(host.data()), 16 * sizeof(double));
    return g.host_now() - t0;
  };
  const SimTime c2 = host_cost_with_queues(2);
  const SimTime c8 = host_cost_with_queues(8);
  EXPECT_NEAR(c8 - c2, 6 * usec(100.0), 1e-9);
}

TEST(AccRuntimeLifecycle, DestructorReleasesQueues) {
  gpu::Gpu g(profile());
  {
    AccRuntime rt(g);
    rt.queue_stream(0);
    rt.queue_stream(1);
    EXPECT_EQ(g.live_streams(), 2);
  }
  EXPECT_EQ(g.live_streams(), 0);
}

TEST(AccMapData, TranslatesHostPointersToTheMappedDevice) {
  gpu::Gpu g(profile());
  AccRuntime rt(g);
  std::vector<double> host(128, 0.0);
  std::byte* dev = g.device_malloc(128 * sizeof(double));
  rt.map_data(reinterpret_cast<std::byte*>(host.data()), dev, 128 * sizeof(double));
  EXPECT_EQ(rt.mapped_device_ptr(reinterpret_cast<std::byte*>(host.data())), dev);
  EXPECT_EQ(rt.mapped_device_ptr(reinterpret_cast<std::byte*>(host.data() + 10)),
            dev + 10 * sizeof(double));
  rt.unmap_data(reinterpret_cast<std::byte*>(host.data()));
  EXPECT_THROW(rt.mapped_device_ptr(reinterpret_cast<std::byte*>(host.data())), Error);
}

TEST(AccMapData, MappedUpdatesMoveTheRightBytes) {
  gpu::Gpu g(profile());
  AccRuntime rt(g);
  std::vector<double> host(64);
  std::iota(host.begin(), host.end(), 0.0);
  double* dev = g.device_alloc<double>(64);
  rt.map_data(reinterpret_cast<std::byte*>(host.data()),
              reinterpret_cast<std::byte*>(dev), 64 * sizeof(double));
  rt.mapped_update_device_async(0, reinterpret_cast<std::byte*>(host.data() + 8),
                                16 * sizeof(double));
  rt.wait();
  for (int i = 8; i < 24; ++i) EXPECT_DOUBLE_EQ(dev[i], host[static_cast<std::size_t>(i)]);
  // Round trip back into a different part of the host array.
  std::fill(host.begin(), host.end(), -1.0);
  rt.mapped_update_self_async(0, reinterpret_cast<std::byte*>(host.data() + 8),
                              16 * sizeof(double));
  rt.wait();
  for (int i = 8; i < 24; ++i) EXPECT_DOUBLE_EQ(host[static_cast<std::size_t>(i)],
                                                static_cast<double>(i));
}

TEST(AccMapData, OverlappingMappingsAreRejected) {
  // The exact restriction that makes acc_map_data unusable for ring
  // buffers (SSIV): one host range cannot map to two device locations.
  gpu::Gpu g(profile());
  AccRuntime rt(g);
  std::vector<double> host(128, 0.0);
  std::byte* d1 = g.device_malloc(1024);
  std::byte* d2 = g.device_malloc(1024);
  std::byte* base = reinterpret_cast<std::byte*>(host.data());
  rt.map_data(base, d1, 512);
  EXPECT_THROW(rt.map_data(base, d2, 512), Error);        // same base
  EXPECT_THROW(rt.map_data(base + 256, d2, 512), Error);  // overlapping tail
  EXPECT_NO_THROW(rt.map_data(base + 512, d2, 512));      // adjacent is fine
}

TEST(AccMapData, MappedUpdatesCostMoreHostTimeThanRawCopies) {
  gpu::Gpu g(profile());
  AccRuntime rt(g);
  std::vector<double> host(64, 0.0);
  double* dev = g.device_alloc<double>(64);
  rt.map_data(reinterpret_cast<std::byte*>(host.data()),
              reinterpret_cast<std::byte*>(dev), 64 * sizeof(double));
  rt.queue_stream(0);  // materialise the queue outside the timed window
  const SimTime t0 = g.host_now();
  rt.update_device_async(0, reinterpret_cast<std::byte*>(dev),
                         reinterpret_cast<std::byte*>(host.data()), 64 * sizeof(double));
  const SimTime raw = g.host_now() - t0;
  const SimTime t1 = g.host_now();
  rt.mapped_update_device_async(0, reinterpret_cast<std::byte*>(host.data()),
                                64 * sizeof(double));
  const SimTime mapped = g.host_now() - t1;
  EXPECT_NEAR(mapped - raw, rt.config().mapped_update_overhead, 1e-12);
  rt.wait();
}

}  // namespace
}  // namespace gpupipe::acc

