// Tests for inter-job plan stitching and kernel fusion: the stitch lowering
// (D2H tail / H2D head -> DeviceHandoff), the fusion pass and its hazard
// guard, fingerprint sensitivity to lineage wiring, serialization of
// stitched plans, and the scheduler's end-to-end handoff runtime including
// the cross-device fallback.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/plan.hpp"
#include "core/plan_cache.hpp"
#include "core/plan_opt.hpp"
#include "core/plan_serialize.hpp"
#include "gpu/device_profile.hpp"
#include "gpu/hazard.hpp"
#include "sched/scheduler.hpp"
#include "sched/workloads.hpp"

namespace gpupipe {
namespace {

std::byte dummy_in[8];
std::byte dummy_out[8];

/// Pointwise in -> out region over `n` rows of `m` doubles (window 1).
core::PipelineSpec pointwise_spec(std::int64_t n, std::int64_t m, std::int64_t chunk,
                                  int streams) {
  core::PipelineSpec spec;
  spec.chunk_size = chunk;
  spec.num_streams = streams;
  spec.opt_level = 0;
  spec.loop_begin = 0;
  spec.loop_end = n;
  spec.arrays = {
      core::ArraySpec{"in", core::MapType::To, dummy_in, sizeof(double), {n, m},
                      core::SplitSpec{0, core::Affine{1, 0}, 1}},
      core::ArraySpec{"out", core::MapType::From, dummy_out, sizeof(double), {n, m},
                      core::SplitSpec{0, core::Affine{1, 0}, 1}},
  };
  return spec;
}

std::int64_t count_op(const core::ExecutionPlan& plan, core::PlanOp op) {
  std::int64_t n = 0;
  for (const auto& node : plan.nodes)
    if (node.op == op) ++n;
  return n;
}

TEST(StitchSpec, ValidationRejectsMisdirectedHandoffs) {
  // A produce handoff stashes device results, so it needs an output array; a
  // consume handoff replaces an upload, so it needs an input array.
  core::PipelineSpec spec = pointwise_spec(8, 4, 2, 2);
  spec.handoffs = {{0, 0, true}};  // "in" is MapType::To
  EXPECT_THROW(spec.validate(), Error);
  spec.handoffs = {{1, 0, false}};  // "out" is MapType::From
  EXPECT_THROW(spec.validate(), Error);
  spec.handoffs = {{1, -1, true}};  // link must be set
  EXPECT_THROW(spec.validate(), Error);
  spec.handoffs = {{1, 0, true}};
  EXPECT_NO_THROW(spec.validate());
}

TEST(StitchPass, RewritesProducerTailIntoDeviceHandoffs) {
  core::PipelineSpec spec = pointwise_spec(8, 4, 2, 2);
  core::ExecutionPlan plan = core::PlanBuilder::pipeline(spec);
  const std::int64_t d2h_nodes = count_op(plan, core::PlanOp::D2H);
  const Bytes d2h_before = plan.transfer_bytes(core::PlanOp::D2H);
  ASSERT_GT(d2h_nodes, 0);

  plan.arrays[1].handoff_link = 0;
  plan.arrays[1].handoff_out = true;
  const core::OptReport report = core::optimize_plan(plan, 0);
  ASSERT_EQ(report.passes.size(), 1u);
  EXPECT_EQ(report.passes[0].pass, "stitch");
  EXPECT_EQ(report.passes[0].nodes_changed, d2h_nodes);
  EXPECT_EQ(report.stitched_bytes, d2h_before);
  EXPECT_EQ(count_op(plan, core::PlanOp::D2H), 0);
  EXPECT_EQ(count_op(plan, core::PlanOp::DeviceHandoff), d2h_nodes);
  for (const auto& n : plan.nodes) {
    if (n.op == core::PlanOp::DeviceHandoff) {
      EXPECT_EQ(n.peer, 0);
    }
  }
  EXPECT_NO_THROW(plan.validate());

  // Idempotent: nothing left to rewrite on a second run.
  const core::OptReport again = core::optimize_plan(plan, 0);
  EXPECT_EQ(again.stitched_bytes, 0);
}

TEST(StitchPass, RewritesConsumerHeadAndLeavesUploadBytesAccounted) {
  core::PipelineSpec spec = pointwise_spec(8, 4, 2, 2);
  core::ExecutionPlan plan = core::PlanBuilder::pipeline(spec);
  const std::int64_t h2d_nodes = count_op(plan, core::PlanOp::H2D);
  const Bytes h2d_before = plan.transfer_bytes(core::PlanOp::H2D);

  plan.arrays[0].handoff_link = 3;
  plan.arrays[0].handoff_out = false;
  const core::OptReport report = core::optimize_plan(plan, 0);
  EXPECT_EQ(report.stitched_bytes, h2d_before);
  EXPECT_EQ(count_op(plan, core::PlanOp::H2D), 0);
  EXPECT_EQ(count_op(plan, core::PlanOp::DeviceHandoff), h2d_nodes);
  for (const auto& n : plan.nodes) {
    if (n.op == core::PlanOp::DeviceHandoff) {
      EXPECT_EQ(n.peer, 3);
    }
  }
  // The D2H tail is untouched: only the wired direction is rewritten.
  EXPECT_GT(count_op(plan, core::PlanOp::D2H), 0);
  EXPECT_NO_THROW(plan.validate());
}

TEST(StitchPass, BuilderStitchesWhenSpecCarriesHandoffWiring) {
  core::PipelineSpec spec = pointwise_spec(8, 4, 2, 2);
  spec.handoffs = {{1, 0, true}};
  const core::ExecutionPlan plan = core::PlanBuilder::pipeline(spec);
  EXPECT_EQ(count_op(plan, core::PlanOp::D2H), 0);
  EXPECT_GT(count_op(plan, core::PlanOp::DeviceHandoff), 0);
  EXPECT_NO_THROW(plan.validate());
}

/// Output-only region planned against a full-length ring: its kernels have
/// no upload or drain dependencies, so adjacent same-stream launches are
/// fusable (a production ring sized to the chunk forces every kernel to wait
/// on the previous drain, which correctly blocks the merge).
core::ExecutionPlan sink_plan(std::int64_t n, std::int64_t m, std::int64_t chunk) {
  core::PipelineSpec spec;
  spec.chunk_size = chunk;
  spec.num_streams = 1;
  spec.opt_level = 0;
  spec.loop_begin = 0;
  spec.loop_end = n;
  spec.arrays = {
      core::ArraySpec{"out", core::MapType::From, dummy_out, sizeof(double), {n, m},
                      core::SplitSpec{0, core::Affine{1, 0}, 1}},
  };
  core::PipelineBuildState state;
  state.ring_lens = {n};
  state.pinned = {true};
  return core::PlanBuilder::pipeline(spec, chunk, 1, 0, n, state);
}

TEST(FusionPass, MergesAdjacentKernelsAndPreservesValidity) {
  core::ExecutionPlan plan = sink_plan(8, 4, 2);
  const std::int64_t kernels_before = count_op(plan, core::PlanOp::Kernel);
  ASSERT_GT(kernels_before, 1);
  const core::OptReport report = core::optimize_plan(plan, 2);
  EXPECT_GT(report.fused_kernels, 0);
  EXPECT_EQ(count_op(plan, core::PlanOp::Kernel), kernels_before - report.fused_kernels);
  EXPECT_NO_THROW(plan.validate());
  // Every pass reports its wall time.
  for (const auto& p : report.passes) EXPECT_GE(p.elapsed_s, 0.0);
}

TEST(FusionPass, CostGateReportsConsistentlyWithProfile) {
  // With a profile the dry run arbitrates: either the fused plan wins and
  // fused_kernels > 0, or the pass reports itself reverted and the plan is
  // byte-identical to the unfused one. Both outcomes must validate.
  core::ExecutionPlan plan = sink_plan(8, 4, 2);
  const std::int64_t kernels_before = count_op(plan, core::PlanOp::Kernel);
  const gpu::DeviceProfile profile = gpu::nvidia_k40m();
  const core::OptReport report = core::optimize_plan(plan, 2, &profile);
  const auto& fusion = report.passes.back();
  if (fusion.pass == "fusion(reverted)") {
    EXPECT_EQ(report.fused_kernels, 0);
    EXPECT_EQ(count_op(plan, core::PlanOp::Kernel), kernels_before);
  } else {
    EXPECT_EQ(fusion.pass, "fusion");
    EXPECT_EQ(count_op(plan, core::PlanOp::Kernel),
              kernels_before - report.fused_kernels);
  }
  EXPECT_NO_THROW(plan.validate());
}

TEST(FusionPass, HandMergedKernelAcrossInterveningUploadFailsValidation) {
  // The fusion pass refuses to merge across a dependency on a later node —
  // here we force exactly that illegal merge by hand: extend chunk 0's
  // kernel to read the input slots chunk 1's upload (another stream, no
  // edge) writes. The static hazard checker must reject the plan.
  core::ExecutionPlan plan = core::PlanBuilder::pipeline(pointwise_spec(8, 4, 2, 2));
  core::PlanNode* k0 = nullptr;
  core::PlanNode* k1 = nullptr;
  for (auto& n : plan.nodes) {
    if (n.op != core::PlanOp::Kernel) continue;
    if (!k0) k0 = &n;
    else if (!k1) k1 = &n;
  }
  ASSERT_NE(k0, nullptr);
  ASSERT_NE(k1, nullptr);
  ASSERT_NO_THROW(plan.validate());
  k0->end = k1->end;
  for (std::size_t i = 0; i < k0->accesses.size(); ++i)
    k0->accesses[i].hi = k1->accesses[i].hi;
  EXPECT_THROW(plan.validate(), gpu::HazardError);
}

TEST(StitchCache, FingerprintDistinguishesLineageWiring) {
  gpu::Gpu g(gpu::nvidia_k40m());
  core::PipelineSpec spec = pointwise_spec(8, 4, 2, 2);
  ASSERT_TRUE(core::PlanCache::fingerprintable(spec));
  const std::string plain = core::PlanCache::fingerprint(g, spec, 2, 2);
  spec.handoffs = {{1, 0, true}};
  const std::string produce = core::PlanCache::fingerprint(g, spec, 2, 2);
  EXPECT_NE(plain, produce);
  spec.handoffs = {{1, 1, true}};
  EXPECT_NE(produce, core::PlanCache::fingerprint(g, spec, 2, 2));
  spec.handoffs = {{1, 0, true}, {0, 1, false}};
  EXPECT_NE(produce, core::PlanCache::fingerprint(g, spec, 2, 2));
}

TEST(StitchSerialize, RoundTripsHandoffNodesAndReportFields) {
  core::PipelineSpec spec = pointwise_spec(8, 4, 2, 2);
  spec.handoffs = {{1, 0, true}};
  core::ExecutionPlan plan = core::PlanBuilder::pipeline(spec);
  ASSERT_GT(count_op(plan, core::PlanOp::DeviceHandoff), 0);

  core::PlanArtifact art;
  art.kind = core::ArtifactKind::Plan;
  art.key = "plan|stitch-round-trip";
  art.plan = plan;
  art.report.stitched_bytes = 4096;
  art.report.fused_kernels = 3;
  art.report.passes.push_back({"stitch", 0, 2, 4096, {}, 1.5e-6});

  core::PlanArtifact back;
  std::string err;
  ASSERT_TRUE(core::deserialize_artifact(core::serialize_artifact(art), back, &err))
      << err;
  ASSERT_EQ(back.plan.nodes.size(), plan.nodes.size());
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    EXPECT_EQ(back.plan.nodes[i].op, plan.nodes[i].op);
    EXPECT_EQ(back.plan.nodes[i].peer, plan.nodes[i].peer);
  }
  ASSERT_EQ(back.plan.arrays.size(), plan.arrays.size());
  for (std::size_t i = 0; i < plan.arrays.size(); ++i) {
    EXPECT_EQ(back.plan.arrays[i].handoff_link, plan.arrays[i].handoff_link);
    EXPECT_EQ(back.plan.arrays[i].handoff_out, plan.arrays[i].handoff_out);
  }
  EXPECT_EQ(back.report.stitched_bytes, 4096);
  EXPECT_EQ(back.report.fused_kernels, 3);
  ASSERT_EQ(back.report.passes.size(), 1u);
  EXPECT_DOUBLE_EQ(back.report.passes[0].elapsed_s, 1.5e-6);
}

// --- Scheduler runtime ---

struct ChainRun {
  sched::ScheduleReport report;
  Bytes h2d = 0;
  Bytes d2h = 0;
  double checksum = 0.0;
  bool verified = true;
};

ChainRun run_chains(int chains, int stages, bool stitching,
                    std::vector<sched::DeviceEvent> events = {}) {
  auto ctx = gpu::make_shared_context();
  std::vector<std::unique_ptr<gpu::Gpu>> gpus;
  std::vector<gpu::Gpu*> devices;
  for (int i = 0; i < 2; ++i) {
    gpus.push_back(std::make_unique<gpu::Gpu>(gpu::nvidia_k40m(),
                                              gpu::ExecMode::Functional, ctx));
    devices.push_back(gpus.back().get());
  }
  sched::SchedulerOptions opts;
  opts.stitching = stitching;
  opts.device_events = std::move(events);
  sched::Scheduler scheduler(devices, opts);
  std::vector<sched::ServeJob> jobs = sched::make_chain_jobs(chains, stages, "small", 0);
  for (const auto& j : jobs) scheduler.submit(j.job);
  ChainRun r;
  r.report = scheduler.run();
  r.h2d = scheduler.total_h2d_bytes();
  r.d2h = scheduler.total_d2h_bytes();
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    r.verified = r.verified && jobs[i].verify();
    r.checksum += jobs[i].output_checksum() * static_cast<double>(i + 1);
  }
  return r;
}

TEST(StitchScheduler, ChainsStitchSaveTransfersAndMatchPlainResults) {
  const ChainRun plain = run_chains(2, 3, false);
  const ChainRun stitched = run_chains(2, 3, true);
  ASSERT_TRUE(plain.verified);
  ASSERT_TRUE(stitched.verified);
  EXPECT_EQ(plain.report.completed, 6);
  EXPECT_EQ(stitched.report.completed, 6);
  EXPECT_EQ(plain.report.stitched_jobs, 0);
  EXPECT_GT(stitched.report.stitched_jobs, 0);
  EXPECT_GT(stitched.report.stitched_bytes, 0);
  // Each 3-stage chain uploads only its head input and drains only its tail
  // output: two thirds of the host traffic disappears.
  EXPECT_LT(stitched.h2d, plain.h2d);
  EXPECT_LT(stitched.d2h, plain.d2h);
  // Bit-identical results, stitched or not.
  EXPECT_EQ(stitched.checksum, plain.checksum);
}

TEST(StitchScheduler, LineageSequencingHoldsWithStitchingDisabled) {
  // Even unstitched, a consumer must never start before its producer is
  // terminal — the lineage gate is scheduling semantics, not a stitch-only
  // optimization.
  const ChainRun plain = run_chains(1, 3, false);
  ASSERT_TRUE(plain.verified);
  const auto& jobs = plain.report.jobs;
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_GE(jobs[1].start, jobs[0].finish);
  EXPECT_GE(jobs[2].start, jobs[1].finish);
}

TEST(StitchScheduler, FallsBackCleanlyWhenConsumerLandsOnAnotherDevice) {
  // Learn where the producer runs, then script that device's departure
  // right after the chain head starts: the consumers must place elsewhere,
  // take the P2P mirror fallback, and still produce correct results.
  const ChainRun probe = run_chains(1, 2, true);
  ASSERT_TRUE(probe.verified);
  EXPECT_EQ(probe.report.handoff_fallbacks, 0);
  const int dev = probe.report.jobs[0].device;

  const ChainRun moved = run_chains(1, 2, true, {{1e-5, dev, false}});
  ASSERT_TRUE(moved.verified);
  EXPECT_EQ(moved.report.completed, 2);
  EXPECT_GT(moved.report.handoff_fallbacks, 0);
  EXPECT_NE(moved.report.jobs[1].device, dev);
  EXPECT_TRUE(moved.report.jobs[1].handoff_fallback);
  // The fallback still consumes device-resident: results stay identical.
  EXPECT_EQ(moved.checksum, probe.checksum);
}

}  // namespace
}  // namespace gpupipe
